"""The fluid network: flow lifecycle, rate allocation, byte integration.

:class:`FluidNetwork` owns the set of active flows.  Whenever that set (or a
flow's private rate cap) changes, bandwidth must be re-shared and the
completion events of the flows whose rates changed must be rescheduled.
Delivered bytes are integrated lazily, per flow, under piecewise-constant
rates (which makes the integration exact).

Rate recomputation is **deferred and batched** (the dirty-set scheme).  A
flow attach/detach/cap change only does O(path) bookkeeping: it records the
affected links in a dirty set (remembering which of them were already
potentially saturated before the change) and arms the engine's flush hook.
The actual recomputation runs at most once per batch of changes — immediately
before the engine fires the next event, before an idle clock fast-forwards,
or when a caller reads rates (:meth:`FluidNetwork.sync`,
:meth:`aggregate_rate_bps`, ...).  Deferral is exact because the simulated
clock cannot advance past the change instant before the flush runs: the old
rates remain valid for the zero simulated seconds they are still in effect.
Batching collapses the common same-instant chains (a flow start immediately
followed by its slow-start cap, an auction teardown cascade) into a single
recomputation and — more importantly — a single round of completion-event
cancel/reschedule heap traffic.

Recomputation is also *component-restricted*: most changes (a payment POST
finishing on one client's uplink, say) can only affect the rates of flows
that share a potentially-saturated link with the changed flow, directly or
transitively.  Each link maintains its "potential load" — an upper bound on
the aggregate rate its flows could jointly push through it, with flows
grouped by their entry link so a well-provisioned core link is not falsely
flagged (see :mod:`repro.simnet.link`).  A link whose capacity covers its
potential load can never saturate and never constrains anyone, so the search
for affected flows only crosses links whose potential load exceeds capacity.
Rates for the affected component are then recomputed with progressive
filling; everything outside the component keeps its previous, still-valid
rate.  The brute-force global computation
(:func:`repro.simnet.bandwidth.max_min_fair_rates`) remains available both
as a reference for the property-based tests and as an ``incremental=False``
escape hatch.

Steady-state traffic recomputes the *same* component shapes over and over
(one more identical payment POST on an otherwise unchanged uplink), so the
network keeps an LRU cache keyed by the component's structural signature —
which constraint links it spans and, per flow, which of them it crosses and
its rate ceiling.  Flows with identical structure provably receive identical
max-min rates, so cached rate vectors can be re-applied positionally to a
sorted view of the component without re-running the waterfill.

Since the struct-of-arrays refactor the hot numeric state (flow rates, caps
and paths; link capacities and potential loads; payment counters) lives in a
:class:`~repro.simnet.soa.SoAStore` owned by the network, with the
``Flow``/``Link`` objects as thin views.  The flush then has two
bit-identical implementations: the historical per-object loops (always used
below :attr:`FluidNetwork.VEC_MIN_COMPONENT` flows, or everywhere when
``vectorized=False``), and an array path that recomputes a large component
with numpy segment operations (:meth:`_flush_component_vec`).  Both produce
the same rates, the same event stream and the same counters; the split
exists purely because numpy's per-call overhead loses to plain Python on
the small components that dominate steady state.

Propagation delays are *not* folded into byte accounting — they are exposed
via :meth:`FluidNetwork.rtt` and the higher layers (thinner, clients, HTTP
download model) account for them explicitly where the paper's evaluation
does (encouragement latency, quiescent periods, auction responses).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import FlowError
from repro.perf.counters import SimCounters
from repro.simnet.bandwidth import RATE_EPSILON, max_min_fair_rates, waterfill_lists
from repro.simnet.engine import Engine
from repro.simnet.flow import Flow, FlowState
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.soa import SoAStore, waterfill_arrays
from repro.simnet.topology import Topology
from repro.simnet.trace import Tracer

#: Completion is declared when fewer than this many bytes remain; guards
#: against floating-point residue keeping a flow alive forever.
BYTES_EPSILON = 1e-6

#: Slack used when comparing a link's potential load against its capacity.
#: A link is "constraining" only when its potential load *strictly* exceeds
#: capacity by more than this: flows that can jointly fill a link exactly are
#: each already limited to their static bounds by something else, so the link
#: cannot force anyone below their bound.
_CAPACITY_SLACK = 1e-6

_INF = float("inf")


class FluidNetwork:
    """Fluid-flow network simulator bound to an :class:`Engine` and a topology."""

    #: Entries kept in the component-signature → rate-vector LRU cache.
    RATE_CACHE_SIZE = 256

    #: Components smaller than this skip the cache entirely: building and
    #: hashing the structural signature costs more than just waterfilling a
    #: handful of flows.  The cache pays off where waterfill's cost curve
    #: bends — wide components recomputed repeatedly in steady state.
    RATE_CACHE_MIN_FLOWS = 16

    #: Components at least this wide take the vectorized recompute path
    #: (when ``vectorized=True``); below it, numpy call overhead loses to
    #: the plain loops.  Both paths are bit-identical, so this is purely a
    #: performance knob.
    VEC_MIN_COMPONENT = 64

    #: :meth:`sync` integrates the whole active set in one array pass at or
    #: above this many flows.
    VEC_MIN_SYNC = 512

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        tracer: Optional[Tracer] = None,
        incremental: bool = True,
        vectorized: bool = True,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.tracer = tracer
        #: When False, every change triggers a global recomputation (slower,
        #: used as a cross-check in tests).
        self.incremental = incremental
        #: When False, the array-based recompute paths are disabled and the
        #: historical per-object loops run everywhere (the "object path" the
        #: equivalence tests drive); results are bit-identical either way.
        self.vectorized = vectorized

        #: The struct-of-arrays store backing flows, links and channels.
        self.soa = SoAStore()

        self._active: Dict[Flow, None] = {}
        #: Hot-path instrumentation (see :mod:`repro.perf.counters`).
        self.counters = SimCounters()
        #: Optional zero-arg factory the thinner layer calls for its price
        #: book (a plain attribute, no import: simnet must not know about
        #: the layers above it).  ``None`` keeps the exact
        #: :class:`~repro.core.pricing.PriceBook`; the deployment sets a
        #: bounded factory in rollup telemetry mode.
        self.price_book_factory = None

        # Dirty-set state for the deferred, batched rate recomputation.
        # Seeds are keyed by the links' dense store ids.
        self._dirty = False
        self._dirty_seeds: Dict[int, Link] = {}
        self._dirty_pre: Set[int] = set()
        self._dirty_flows: Dict[Flow, None] = {}
        self._rate_cache: "OrderedDict[tuple, object]" = OrderedDict()

        self.total_delivered_bytes = 0.0
        self.completed_flows = 0
        self.stopped_flows = 0

        engine.add_flush_callback(self._flush_rates)
        self._reset_link_state()

    def _reset_link_state(self) -> None:
        """Clear allocator bookkeeping on every link and register it with
        this network's store.

        A topology handed to a fresh network may have been driven by a
        previous one; registration assigns new dense ids in the new store.
        """
        soa = self.soa
        for host in self.topology.hosts:
            access = host.access
            access.up._reset_runtime()
            soa.register_link(access.up)
            access.down._reset_runtime()
            soa.register_link(access.down)
        for cable in self.topology.shared_links:
            cable.up._reset_runtime()
            soa.register_link(cable.up)
            cable.down._reset_runtime()
            soa.register_link(cable.down)

    # -- queries ---------------------------------------------------------------

    @property
    def active_flows(self) -> List[Flow]:
        """Flows currently being allocated bandwidth (a copy)."""
        return list(self._active)

    def active_flow_count(self) -> int:
        """Number of currently active flows."""
        return len(self._active)

    def rtt(self, a: Host, b: Host) -> float:
        """Round-trip propagation delay between two hosts."""
        return self.topology.rtt(a, b)

    # -- flow construction -------------------------------------------------------

    def create_flow(
        self,
        src: Host,
        dst: Host,
        size_bytes: Optional[float] = None,
        rate_cap_bps: Optional[float] = None,
        label: str = "flow",
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Build (but do not start) a flow routed by the topology."""
        path = self.topology.path(src, dst)
        return Flow(
            src,
            dst,
            path,
            size_bytes=size_bytes,
            rate_cap_bps=rate_cap_bps,
            label=label,
            on_complete=on_complete,
        )

    # -- flow lifecycle ------------------------------------------------------------

    def start_flow(self, flow: Flow) -> Flow:
        """Activate ``flow``; its rate materialises at the next flush."""
        if flow.state == FlowState.ACTIVE:
            raise FlowError(f"flow {flow.flow_id} is already active")
        if flow.state in (FlowState.COMPLETED, FlowState.STOPPED):
            raise FlowError(f"flow {flow.flow_id} has already finished ({flow.state.value})")
        flow.state = FlowState.ACTIVE
        flow.started_at = self.engine.now
        flow._slast = self.engine.now

        lids = self._ensure_path_lids(flow)
        self._note_change(flow.path, lids, flow)
        self._attach(flow, lids)
        if self.tracer is not None:
            self.tracer.record(
                "flow_start",
                time=self.engine.now,
                flow_id=flow.flow_id,
                label=flow.label,
                src=flow.src.name,
                dst=flow.dst.name,
                size=flow.size_bytes,
            )
        return flow

    def send(
        self,
        src: Host,
        dst: Host,
        size_bytes: Optional[float] = None,
        rate_cap_bps: Optional[float] = None,
        label: str = "flow",
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Create and immediately start a flow."""
        flow = self.create_flow(
            src,
            dst,
            size_bytes=size_bytes,
            rate_cap_bps=rate_cap_bps,
            label=label,
            on_complete=on_complete,
        )
        return self.start_flow(flow)

    def stop_flow(self, flow: Flow) -> float:
        """Deactivate ``flow`` (e.g. the auction winner's payment channel).

        Returns the bytes it delivered.  Stopping an already-finished flow is
        a no-op so callers do not need to worry about races with completion.
        """
        if flow.state != FlowState.ACTIVE:
            return flow.delivered_bytes
        self._integrate(flow)
        self._note_change(flow.path, flow._path_lids)
        self._detach(flow, FlowState.STOPPED)
        self.stopped_flows += 1
        if self.tracer is not None:
            self.tracer.record(
                "flow_stop",
                time=self.engine.now,
                flow_id=flow.flow_id,
                label=flow.label,
                delivered=flow.delivered_bytes,
            )
        return flow.delivered_bytes

    def set_rate_cap(self, flow: Flow, rate_cap_bps: Optional[float]) -> None:
        """Change a flow's private rate ceiling (slow-start ramp) and mark it dirty."""
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise FlowError(f"rate cap must be positive or None, got {rate_cap_bps}")
        fid = flow._fid
        if fid < 0:
            # Detached (not yet started, or already finished): the scalar
            # slot is authoritative and no load bookkeeping exists to shift.
            if flow._scap != rate_cap_bps:
                flow._scap = rate_cap_bps
            return
        soa = self.soa
        encoded = _INF if rate_cap_bps is None else rate_cap_bps
        if soa.fm_cap[fid] == encoded:
            return
        soa.fm_cap[fid] = encoded
        path = flow.path
        lids = flow._path_lids
        self._note_change(path, lids, flow)
        old_bound = soa.fm_bound[fid]
        new_bound = flow._path_min_cap
        if rate_cap_bps is not None and rate_cap_bps < new_bound:
            new_bound = rate_cap_bps
        if new_bound != old_bound:
            soa.fm_bound[fid] = new_bound
            delta = new_bound - old_bound
            entry = path[0]
            soa.lm_pot[lids[0]] += delta
            for i in range(1, len(path)):
                path[i]._add_entry_load(entry, delta)

    def set_link_capacity(self, link: Link, capacity_bps: float) -> None:
        """Change a link's capacity mid-run and re-derive every affected bound.

        The mechanics mirror :meth:`set_rate_cap`, but one link touches many
        flows: every flow crossing ``link`` is marked dirty (so the flush
        component covers capacity *increases*, where nothing need be
        saturated afterwards), the capacity moves in both the scalar
        attribute and the SoA ``l_cap`` mirror (each waterfill path reads
        its own), entry-group caps where ``link`` is the entry are
        re-clamped, and each crossing flow's static path bound is recomputed
        with the same potential-load delta walk ``set_rate_cap`` uses.  The
        rate caches need no invalidation: their keys embed the constraint
        capacities on both paths.
        """
        if capacity_bps <= 0:
            raise FlowError(
                f"link capacity must be positive, got {capacity_bps} for {link.name!r}"
            )
        old_cap = link.capacity_bps
        if capacity_bps == old_cap:
            return
        soa = self.soa
        if link._soa is not soa:
            soa.register_link(link)
        flows = list(link._flows)
        for flow in flows:
            self._note_change(flow.path, flow._path_lids, flow)
        link.capacity_bps = capacity_bps
        soa.l_cap[link._lid] = capacity_bps
        # Entry-group re-clamp: groups entering the network at ``link`` are
        # capped at its capacity on every downstream link; shift each
        # downstream potential by the change in min(cap, group_sum).  Must
        # happen before the per-flow bound deltas below, which already use
        # the new capacity inside _add_entry_load.
        entry_key = id(link)
        seen: set = set()
        for flow in flows:
            path = flow.path
            if path[0] is not link:
                continue
            for i in range(1, len(path)):
                downstream = path[i]
                mark = id(downstream)
                if mark in seen:
                    continue
                seen.add(mark)
                group_sum = downstream._entry_sums.get(entry_key)
                if group_sum is None:
                    continue
                old_capped = old_cap if group_sum > old_cap else group_sum
                new_capped = capacity_bps if group_sum > capacity_bps else group_sum
                if new_capped != old_capped:
                    dsoa = downstream._soa
                    if dsoa is not None:
                        dsoa.lm_pot[downstream._lid] += new_capped - old_capped
                    else:
                        downstream._spot += new_capped - old_capped
        f_cap = soa.fm_cap
        f_bound = soa.fm_bound
        pot = soa.lm_pot
        for flow in flows:
            path = flow.path
            new_min = path[0].capacity_bps
            for crossed in path:
                if crossed.capacity_bps < new_min:
                    new_min = crossed.capacity_bps
            flow._path_min_cap = new_min
            fid = flow._fid
            new_bound = new_min
            rate_cap = f_cap[fid]
            if rate_cap < new_bound:
                new_bound = rate_cap
            old_bound = f_bound[fid]
            if new_bound != old_bound:
                f_bound[fid] = new_bound
                delta = new_bound - old_bound
                entry = path[0]
                lids = flow._path_lids
                pot[lids[0]] += delta
                for i in range(1, len(path)):
                    path[i]._add_entry_load(entry, delta)

    def sync(self) -> None:
        """Flush pending rate updates, then bring every active flow's
        ``delivered_bytes`` up to the current time."""
        self._flush_rates()
        active = self._active
        if self.vectorized and len(active) >= self.VEC_MIN_SYNC:
            self._integrate_all_vec()
        else:
            for flow in active:
                self._integrate(flow)

    def delivered_bytes(self, flow: Flow) -> float:
        """Delivered bytes of ``flow`` as of now (integrating if still active).

        Exact even while a rate recomputation is pending: pending changes
        were made at the *current* instant, so the pre-change rate still
        covers the whole integration interval.
        """
        if flow.state == FlowState.ACTIVE:
            self._integrate(flow)
        return flow.delivered_bytes

    # -- bookkeeping internals ------------------------------------------------------

    def _ensure_path_lids(self, flow: Flow) -> tuple:
        """Register any unregistered path links and cache the dense ids."""
        soa = self.soa
        lids: List[int] = []
        for link in flow.path:
            if link._soa is not soa:
                soa.register_link(link)
            lids.append(link._lid)
        out = tuple(lids)
        flow._path_lids = out
        return out

    def _note_change(self, path: List[Link], lids: tuple, flow: Optional[Flow] = None) -> None:
        """Record a flow-set change: O(path), no recomputation.

        Must run *before* the change mutates the load bookkeeping — the
        flush seeds the affected component from links that were potentially
        saturated either before any change in the batch or after all of
        them.
        """
        self.counters.reallocations += 1
        seeds = self._dirty_seeds
        pre = self._dirty_pre
        slack = _CAPACITY_SLACK
        pot = self.soa.lm_pot
        for lid, link in zip(lids, path):
            if lid not in seeds:
                seeds[lid] = link
            if pot[lid] > link.capacity_bps + slack:
                pre.add(lid)
        if flow is not None:
            self._dirty_flows[flow] = None
        if not self._dirty:
            self._dirty = True
            self.engine.request_flush()

    def _attach(self, flow: Flow, lids: tuple) -> None:
        self._active[flow] = None
        path = flow.path
        bound = flow._path_min_cap
        cap = flow._scap
        if cap is not None and cap < bound:
            bound = cap
        flow._sbound = bound
        soa = self.soa
        soa.acquire_flow(flow, lids)
        flow._soa = soa
        pot = soa.lm_pot
        entry = path[0]
        entry._flows[flow] = None
        entry._flow_count += 1
        pot[lids[0]] += bound
        for i in range(1, len(path)):
            link = path[i]
            link._flows[flow] = None
            link._flow_count += 1
            link._add_entry_load(entry, bound)

    def _detach(self, flow: Flow, final_state: FlowState) -> None:
        self._active.pop(flow, None)
        soa = self.soa
        fid = flow._fid
        path = flow.path
        lids = flow._path_lids
        pot = soa.lm_pot
        bound = soa.fm_bound[fid]
        soa.fm_bound[fid] = 0.0
        entry = path[0]
        entry._flows.pop(flow, None)
        entry._flow_count -= 1
        pot[lids[0]] -= bound
        if not entry._flows:
            pot[lids[0]] = 0.0
            entry._entry_sums.clear()
        for i in range(1, len(path)):
            link = path[i]
            link._flows.pop(flow, None)
            link._flow_count -= 1
            link._add_entry_load(entry, -bound)
            if not link._flows:
                pot[lids[i]] = 0.0
                link._entry_sums.clear()
        flow.state = final_state
        flow.finished_at = self.engine.now
        soa.fm_rate[fid] = 0.0
        event = flow._completion_event
        if event is not None:
            event.cancel()
            flow._completion_event = None
        soa.release_flow(flow)

    def _integrate(self, flow: Flow) -> None:
        now = self.engine.now
        soa = self.soa
        fid = flow._fid
        f_last = soa.fm_last
        dt = now - f_last[fid]
        if dt > 0:
            rate = soa.fm_rate[fid]
            if rate > 0:
                delivered = rate * dt / 8.0
                size = flow.size_bytes
                if size is not None:
                    remaining = size - soa.fm_delivered[fid]
                    if delivered > remaining:
                        delivered = remaining
                soa.fm_delivered[fid] += delivered
                self.total_delivered_bytes += delivered
        f_last[fid] = now

    def _integrate_all_vec(self) -> None:
        """One array pass over every active flow (same math as ``_integrate``)."""
        active = self._active
        n = len(active)
        if not n:
            return
        soa = self.soa
        now = self.engine.now
        fids = np.fromiter((f._fid for f in active), dtype=np.int64, count=n)
        last = soa.f_last[fids]
        rate = soa.f_rate[fids]
        dt = now - last
        live = (dt > 0) & (rate > 0)
        delivered = np.where(live, rate * dt / 8.0, 0.0)
        done = soa.f_delivered[fids]
        remaining = soa.f_size[fids] - done
        delivered = np.where(delivered > remaining, remaining, delivered)
        soa.f_delivered[fids] = done + delivered
        # Accumulate sequentially, in active-set order, to match the scalar
        # loop bit for bit (adding 0.0 for idle flows is an exact identity).
        total = self.total_delivered_bytes
        for value in delivered.tolist():
            total += value
        self.total_delivered_bytes = total
        soa.f_last[fids] = now

    def _is_constraining(self, link: Link) -> bool:
        return link._potential > link.capacity_bps + _CAPACITY_SLACK

    # -- deferred rate recomputation ---------------------------------------------------

    def _flush_rates(self) -> None:
        """Recompute rates for everything touched since the last flush.

        Registered as the engine's flush callback; also invoked directly by
        the rate-reading queries.  No-op when nothing is dirty.
        """
        if not self._dirty:
            return
        self._dirty = False
        counters = self.counters
        counters.flushes += 1
        live = self.engine.pending_events
        if live > counters.peak_live_events:
            counters.peak_live_events = live
        seeds = self._dirty_seeds
        pre = self._dirty_pre
        dirty_flows = self._dirty_flows
        self._dirty_seeds = {}
        self._dirty_pre = set()
        self._dirty_flows = {}

        if not self.incremental:
            flows = list(self._active)
            counters.waterfill_calls += 1
            counters.flows_touched += len(flows)
            rates_map = max_min_fair_rates(flows)
            self._apply_rates(flows, [rates_map.get(flow, 0.0) for flow in flows])
            return

        slack = _CAPACITY_SLACK
        soa = self.soa
        pot = soa.lm_pot
        seed_links = [
            link
            for lid, link in seeds.items()
            if lid in pre or pot[lid] > link.capacity_bps + slack
        ]
        component = self._component(seed_links)
        for flow in dirty_flows:
            if flow.state is FlowState.ACTIVE and flow not in component:
                component[flow] = None
        if not component:
            return
        flows = list(component)
        n = len(flows)

        if self.vectorized and n >= self.VEC_MIN_COMPONENT:
            self._flush_component_vec(flows)
            return

        # Which links can actually bind the component?
        constraint_links: List[Link] = []
        link_pos: Dict[int, int] = {}
        for flow in flows:
            path = flow.path
            for i, lid in enumerate(flow._path_lids):
                if lid not in link_pos:
                    link = path[i]
                    if pot[lid] > link.capacity_bps + slack:
                        link_pos[lid] = len(constraint_links)
                        constraint_links.append(link)

        use_cache = n >= self.RATE_CACHE_MIN_FLOWS

        # Per-flow ceilings (own cap folded with never-saturating path links),
        # crossed-link index lists and, when caching, the structural signature.
        f_cap = soa.fm_cap
        caps: List[float] = []
        flow_links: List[List[int]] = []
        unfrozen_on = [0] * len(constraint_links)
        structs: List[tuple] = []
        get_pos = link_pos.get
        for flow in flows:
            cap = f_cap[flow._fid]
            path = flow.path
            lids = flow._path_lids
            indices: List[int] = []
            if use_cache:
                crossed: List[int] = []
                for i, lid in enumerate(lids):
                    pos = get_pos(lid)
                    if pos is not None:
                        crossed.append(lid)
                        indices.append(pos)
                    else:
                        capacity = path[i].capacity_bps
                        if capacity < cap:
                            cap = capacity
                crossed.sort()
                structs.append((tuple(crossed), cap))
            else:
                for i, lid in enumerate(lids):
                    pos = get_pos(lid)
                    if pos is not None:
                        indices.append(pos)
                    else:
                        capacity = path[i].capacity_bps
                        if capacity < cap:
                            cap = capacity
            for index in indices:
                unfrozen_on[index] += 1
            caps.append(cap)
            flow_links.append(indices)

        if not use_cache:
            # Below the cache threshold: cache_hits/misses deliberately not
            # touched, so those counters measure cache traffic alone.
            counters.waterfill_calls += 1
            counters.flows_touched += n
            remaining = [link.capacity_bps for link in constraint_links]
            rates = waterfill_lists(caps, flow_links, remaining, unfrozen_on)
            self._apply_rates(flows, rates)
            return

        order = sorted(range(n), key=structs.__getitem__)
        key = (
            tuple(sorted((link._lid, link.capacity_bps) for link in constraint_links)),
            tuple(structs[index] for index in order),
        )
        cache = self._rate_cache
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            counters.cache_hits += 1
            rates = [0.0] * n
            for position, index in enumerate(order):
                rates[index] = cached[position]
        else:
            counters.cache_misses += 1
            counters.waterfill_calls += 1
            counters.flows_touched += n
            remaining = [link.capacity_bps for link in constraint_links]
            rates = waterfill_lists(caps, flow_links, remaining, unfrozen_on)
            cache[key] = tuple(rates[index] for index in order)
            if len(cache) > self.RATE_CACHE_SIZE:
                cache.popitem(last=False)
        self._apply_rates(flows, rates)

    def _flush_component_vec(self, flows: List[Flow]) -> None:
        """Array-path recompute of one (wide) component.

        Mirrors the scalar flush stage by stage: constraint discovery in
        first-occurrence order (so the waterfill's tie-breaks match the
        scalar link ordering), effective caps as exact ``min`` folds, the
        LRU signature canonicalised by sorting (its own key namespace — a
        component's size determines its path, so scalar and vector keys
        never mix for the same structure), and the vectorized waterfill of
        :func:`repro.simnet.soa.waterfill_arrays`.
        """
        counters = self.counters
        soa = self.soa
        n = len(flows)
        fids = np.fromiter((flow._fid for flow in flows), dtype=np.int64, count=n)
        nlinks = len(soa.l_views)
        width = int(soa.f_plen[fids].max())
        paths = soa.f_path[fids, :width]
        valid = paths >= 0
        padded = np.where(valid, paths, nlinks)
        cap_ext = np.empty(nlinks + 1)
        cap_ext[:nlinks] = soa.l_cap[:nlinks]
        cap_ext[nlinks] = np.inf
        pot_ext = np.zeros(nlinks + 1)
        pot_ext[:nlinks] = soa.l_pot[:nlinks]
        # Constraining occurrences (the sentinel column is never constraining).
        crossing_con = pot_ext[padded] > cap_ext[padded] + _CAPACITY_SLACK
        crossing_con &= valid
        flat = padded[crossing_con]  # row-major == the scalar discovery scan
        if flat.size:
            uniq, first = np.unique(flat, return_index=True)
            con_lids = uniq[np.argsort(first)]
        else:
            con_lids = flat
        m = con_lids.shape[0]

        # Effective caps: own cap folded with non-constraint path capacities.
        caps = np.where(valid & ~crossing_con, cap_ext[padded], np.inf)
        eff = np.minimum(soa.f_cap[fids], caps.min(axis=1)) if width else soa.f_cap[fids]

        # CSR of crossed constraint links, local indices in discovery order.
        lut = np.full(nlinks + 1, -1, dtype=np.int64)
        lut[con_lids] = np.arange(m, dtype=np.int64)
        row_counts = crossing_con.sum(axis=1)
        csr_idx = lut[padded[crossing_con]]

        # Structural signature (always ≥ RATE_CACHE_MIN_FLOWS here): rows of
        # (sorted crossed lids, padded) + effective cap, lexicographically
        # ordered; constraint part sorted by lid.  Equal structures yield
        # equal bytes, so hit/miss behaviour matches the scalar criterion.
        crossed = np.where(crossing_con, padded, nlinks + 1)
        crossed.sort(axis=1)
        sort_keys = [eff]
        for column in range(width - 1, -1, -1):
            sort_keys.append(crossed[:, column])
        order = np.lexsort(sort_keys)
        con_order = np.argsort(con_lids)
        key = (
            con_lids[con_order].tobytes(),
            cap_ext[con_lids][con_order].tobytes(),
            crossed[order].tobytes(),
            eff[order].tobytes(),
        )
        cache = self._rate_cache
        cached = cache.get(key)
        if cached is not None:
            cache.move_to_end(key)
            counters.cache_hits += 1
            rates = np.empty(n)
            rates[order] = cached
        else:
            counters.cache_misses += 1
            counters.waterfill_calls += 1
            counters.flows_touched += n
            remaining = cap_ext[con_lids].copy()
            unfrozen_on = (
                np.bincount(csr_idx, minlength=m)
                if csr_idx.size
                else np.zeros(m, dtype=np.int64)
            )
            rates = waterfill_arrays(eff, remaining, unfrozen_on, csr_idx, row_counts)
            cache[key] = rates[order].copy()
            if len(cache) > self.RATE_CACHE_SIZE:
                cache.popitem(last=False)
        self._apply_rates_vec(flows, fids, rates)

    def _component(self, seed_links: List[Link]) -> Dict[Flow, None]:
        component: Dict[Flow, None] = {}
        visited = {link._lid for link in seed_links}
        frontier = list(seed_links)
        slack = _CAPACITY_SLACK
        pot = self.soa.lm_pot
        while frontier:
            next_frontier: List[Link] = []
            for link in frontier:
                for flow in link._flows:
                    if flow in component:
                        continue
                    component[flow] = None
                    path = flow.path
                    lids = flow._path_lids
                    for i, lid in enumerate(lids):
                        if lid not in visited:
                            other = path[i]
                            if pot[lid] > other.capacity_bps + slack:
                                visited.add(lid)
                                next_frontier.append(other)
            frontier = next_frontier
        return component

    def _apply_rates(self, flows: List[Flow], rates: List[float]) -> None:
        soa = self.soa
        f_rate = soa.fm_rate
        f_last = soa.fm_last
        f_delivered = soa.fm_delivered
        now = self.engine.now
        epsilon = RATE_EPSILON
        for i, flow in enumerate(flows):
            new_rate = rates[i]
            fid = flow._fid
            old_rate = f_rate[fid]
            changed = (
                new_rate - old_rate > epsilon or old_rate - new_rate > epsilon
            )
            if changed:
                # Settle what was delivered at the old rate before switching
                # (``_integrate``, inlined — this is the hottest loop).
                dt = now - f_last[fid]
                if dt > 0 and old_rate > 0:
                    delivered = old_rate * dt / 8.0
                    size = flow.size_bytes
                    if size is not None:
                        remaining = size - f_delivered[fid]
                        if delivered > remaining:
                            delivered = remaining
                    f_delivered[fid] += delivered
                    self.total_delivered_bytes += delivered
                f_last[fid] = now
                f_rate[fid] = new_rate
                callback = flow.on_rate_change
                if callback is not None:
                    callback(flow)
            # A flow whose rate did not change keeps its completion event:
            # with a constant rate the absolute completion time is unchanged.
            if changed or (flow.size_bytes is not None and flow._completion_event is None):
                self._reschedule_completion(flow)

    def _apply_rates_vec(self, flows: List[Flow], fids: np.ndarray, new_rates: np.ndarray) -> None:
        """Array twin of :meth:`_apply_rates` (same order of effects).

        Integrations land first (in flow order, exactly as the scalar loop
        interleaves them — nothing between two flows' integrations observes
        intermediate state), then the per-flow callbacks and completion
        rescheduling run in the same flow order, creating engine events in
        the same sequence.
        """
        soa = self.soa
        old = soa.f_rate[fids]
        changed = np.abs(new_rates - old) > RATE_EPSILON
        now = self.engine.now
        touched = np.flatnonzero(changed)
        if touched.size:
            cf = fids[touched]
            dt = now - soa.f_last[cf]
            rate = old[touched]
            live = (dt > 0) & (rate > 0)
            delivered = np.where(live, rate * dt / 8.0, 0.0)
            done = soa.f_delivered[cf]
            remaining = soa.f_size[cf] - done
            delivered = np.where(delivered > remaining, remaining, delivered)
            soa.f_delivered[cf] = done + delivered
            total = self.total_delivered_bytes
            for value in delivered.tolist():
                total += value
            self.total_delivered_bytes = total
            soa.f_last[cf] = now
            soa.f_rate[cf] = new_rates[touched]
        action = changed | ((soa.f_size[fids] != np.inf) & ~soa.f_event[fids])
        if not action.any():
            return
        changed_list = changed.tolist()
        for i in np.flatnonzero(action).tolist():
            flow = flows[i]
            if changed_list[i]:
                callback = flow.on_rate_change
                if callback is not None:
                    callback(flow)
            self._reschedule_completion(flow)

    def _reschedule_completion(self, flow: Flow) -> None:
        event = flow._completion_event
        if event is not None:
            event.cancel()
            flow._completion_event = None
        size = flow.size_bytes
        soa = self.soa
        fid = flow._fid
        if size is None or flow.state != FlowState.ACTIVE:
            if fid >= 0:
                soa.fm_event[fid] = False
            return
        remaining = size - soa.fm_delivered[fid]
        if remaining <= BYTES_EPSILON:
            # Completed exactly at this instant; finish via an immediate event
            # so the caller of the triggering operation returns first.
            flow._completion_event = self.engine.call_soon(self._complete, flow)
            soa.fm_event[fid] = True
            return
        rate = soa.fm_rate[fid]
        if rate > RATE_EPSILON:
            eta = remaining * 8.0 / rate
            flow._completion_event = self.engine.schedule_after(eta, self._complete, flow)
            soa.fm_event[fid] = True
        else:
            soa.fm_event[fid] = False

    def _complete(self, flow: Flow) -> None:
        if flow.state != FlowState.ACTIVE:
            return
        self._integrate(flow)
        remaining = (flow.size_bytes or 0.0) - flow.delivered_bytes
        if remaining > BYTES_EPSILON:
            # Rates changed between scheduling and firing; the reallocation
            # that changed them already rescheduled us, so just bail out.
            return
        flow.delivered_bytes = float(flow.size_bytes)
        self._note_change(flow.path, flow._path_lids)
        self._detach(flow, FlowState.COMPLETED)
        self.completed_flows += 1
        if self.tracer is not None:
            self.tracer.record(
                "flow_complete",
                time=self.engine.now,
                flow_id=flow.flow_id,
                label=flow.label,
                delivered=flow.delivered_bytes,
            )
        if flow.on_complete is not None:
            flow.on_complete(flow)

    # -- aggregate statistics ----------------------------------------------------------

    def aggregate_rate_bps(self, predicate: Optional[Callable[[Flow], bool]] = None) -> float:
        """Sum of current rates over active flows matching ``predicate``."""
        self._flush_rates()
        active = self._active
        total = 0.0
        if not active:
            return total
        n = len(active)
        fids = np.fromiter((flow._fid for flow in active), dtype=np.int64, count=n)
        rates = self.soa.f_rate[fids].tolist()
        if predicate is None:
            for rate in rates:
                total += rate
        else:
            for flow, rate in zip(active, rates):
                if predicate(flow):
                    total += rate
        return total

    def flows_on(self, link: Link) -> List[Flow]:
        """Active flows whose path crosses ``link``."""
        return list(link._flows)

    def link_load_bps(self, link: Link) -> float:
        """Aggregate rate currently crossing ``link``."""
        self._flush_rates()
        return sum(flow.rate_bps for flow in link._flows)

    def link_utilisation(self, link: Link) -> float:
        """Fraction of ``link``'s capacity in use right now."""
        return self.link_load_bps(link) / link.capacity_bps
