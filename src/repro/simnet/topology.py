"""Topologies: how hosts reach each other.

Every topology in the paper's evaluation is a star: clients and the thinner
hang off a core switch, possibly with a shared cable (the bottleneck ``l`` of
§7.6 or ``m`` of §7.7) between a group of clients and the switch.  We model
exactly that: each host attaches to the core either directly or through a
chain of :class:`~repro.simnet.link.DuplexLink` objects, and the path between
two hosts is "up through the source's chain, down through the destination's".

Beyond the paper's stars, :class:`FabricTopology` and its builders
(:func:`build_fat_tree`, :func:`build_leaf_spine`) model the hierarchical
datacenter fabrics a real multi-datacenter thinner fleet would sit in:
multiple switch tiers, configurable oversubscription, ECMP-style hashed path
selection at every fan-out point, and optional cross-traffic endpoint pairs
whose flows occupy core links.  Fabric switch-to-switch links are ordinary
shared :class:`~repro.simnet.link.DuplexLink` cables, so the fluid network
registers and waterfills them with no special cases — only path computation
differs, via the :meth:`Topology._route` hook.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.constants import MBIT, milliseconds
from repro.errors import TopologyError
from repro.rng import derive_seed
from repro.simnet.host import Host, make_host
from repro.simnet.link import DuplexLink, Link


class Topology:
    """A star topology with optional shared cables between hosts and the core."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._hosts: Dict[str, Host] = {}
        self._via: Dict[str, List[DuplexLink]] = {}
        self._shared: Dict[str, DuplexLink] = {}
        # Route and delay memos: topologies are static star shapes queried
        # millions of times (every flow start builds a path, every
        # encouragement computes a delay), so both are cached per endpoint
        # pair and invalidated whenever the shape changes.  Link delays and
        # host-attributed delays are immutable after construction.
        self._path_cache: Dict[Tuple[str, str], List[Link]] = {}
        self._delay_cache: Dict[Tuple[str, str], float] = {}

    # -- construction -----------------------------------------------------------

    def _invalidate_routes(self) -> None:
        self._path_cache.clear()
        self._delay_cache.clear()

    def add_shared_link(self, link: DuplexLink) -> DuplexLink:
        """Register a shared cable so it can be referenced by name."""
        if link.name in self._shared:
            raise TopologyError(f"shared link {link.name!r} already exists")
        self._shared[link.name] = link
        self._invalidate_routes()
        return link

    def add_host(self, host: Host, via: Optional[Sequence[DuplexLink]] = None) -> Host:
        """Attach ``host`` to the core, optionally through shared cables."""
        if host.name in self._hosts:
            raise TopologyError(f"host {host.name!r} already exists")
        self._hosts[host.name] = host
        chain = list(via) if via else []
        for link in chain:
            if link.name not in self._shared:
                self._shared[link.name] = link
        self._via[host.name] = chain
        self._invalidate_routes()
        return host

    # -- lookups ---------------------------------------------------------------

    @property
    def hosts(self) -> List[Host]:
        """All hosts, in insertion order."""
        return list(self._hosts.values())

    @property
    def shared_links(self) -> List[DuplexLink]:
        """All shared cables, in insertion order."""
        return list(self._shared.values())

    def host(self, name: str) -> Host:
        """Look a host up by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise TopologyError(f"unknown host {name!r}") from None

    def shared_link(self, name: str) -> DuplexLink:
        """Look a shared cable up by name."""
        try:
            return self._shared[name]
        except KeyError:
            raise TopologyError(f"unknown shared link {name!r}") from None

    def __contains__(self, host: Host) -> bool:
        return host.name in self._hosts and self._hosts[host.name] is host

    # -- routing -----------------------------------------------------------------

    def upstream_links(self, host: Host) -> List[Link]:
        """Directed links from ``host`` to the core (access uplink first)."""
        self._check(host)
        return [host.access.up] + [cable.up for cable in self._via[host.name]]

    def downstream_links(self, host: Host) -> List[Link]:
        """Directed links from the core to ``host`` (access downlink last)."""
        self._check(host)
        return [cable.down for cable in reversed(self._via[host.name])] + [host.access.down]

    def path(self, src: Host, dst: Host) -> List[Link]:
        """Directed links a flow from ``src`` to ``dst`` crosses.

        Callers must treat the returned list as read-only (it is a shared
        memo; :class:`~repro.simnet.flow.Flow` copies it anyway).
        """
        if src is dst:
            raise TopologyError(f"flow endpoints must differ (got {src.name!r} twice)")
        key = (src.name, dst.name)
        cached = self._path_cache.get(key)
        # The memo is keyed by name; verify identity so a stale host object
        # with a reused name still raises like the uncached lookup would.
        if (
            cached is not None
            and self._hosts.get(src.name) is src
            and self._hosts.get(dst.name) is dst
        ):
            return cached
        links = self._route(src, dst)
        self._path_cache[key] = links
        return links

    def _route(self, src: Host, dst: Host) -> List[Link]:
        """Uncached path computation; fabric topologies override this."""
        return self.upstream_links(src) + self.downstream_links(dst)

    def one_way_delay(self, src: Host, dst: Host) -> float:
        """Propagation delay from ``src`` to ``dst``, including host-attributed delay."""
        key = (src.name, dst.name)
        cached = self._delay_cache.get(key)
        if (
            cached is not None
            and self._hosts.get(src.name) is src
            and self._hosts.get(dst.name) is dst
        ):
            return cached
        links = self.path(src, dst)
        delay = sum(link.delay_s for link in links) + src.extra_delay_s + dst.extra_delay_s
        self._delay_cache[key] = delay
        return delay

    def rtt(self, a: Host, b: Host) -> float:
        """Round-trip propagation delay between two hosts."""
        return self.one_way_delay(a, b) + self.one_way_delay(b, a)

    def _check(self, host: Host) -> None:
        if host.name not in self._hosts or self._hosts[host.name] is not host:
            raise TopologyError(f"host {host.name!r} is not part of topology {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({self.name!r}, hosts={len(self._hosts)}, shared={len(self._shared)})"


# ---------------------------------------------------------------------------
# Builders matching the paper's Emulab setups
# ---------------------------------------------------------------------------

#: Default capacity of the thinner's access link: generous, per condition C1
#: ("the thinner needs enough bandwidth to absorb a full DDoS attack and
#: more", §4.3), and deliberately far above any aggregate client bandwidth in
#: the evaluation topologies so the thinner's own link never bottlenecks.
DEFAULT_THINNER_BANDWIDTH = 10_000 * MBIT

#: Default one-way delay of a LAN hop in the evaluation topologies.
DEFAULT_LAN_DELAY = milliseconds(1.0)


def build_lan(
    client_bandwidths_bps: Sequence[float],
    client_delays_s: Optional[Sequence[float]] = None,
    thinner_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    name: str = "lan",
) -> Tuple[Topology, List[Host], Host]:
    """The §7.2–§7.5 topology: N clients and the thinner on one LAN.

    ``client_delays_s`` gives each client's one-way host-attributed delay
    (used by the RTT-heterogeneity experiment, Figure 7); it defaults to zero
    extra delay beyond the LAN hop.
    """
    count = len(client_bandwidths_bps)
    if count == 0:
        raise TopologyError("need at least one client")
    if client_delays_s is not None and len(client_delays_s) != count:
        raise TopologyError("client_delays_s must match client_bandwidths_bps in length")

    topology = Topology(name)
    thinner = make_host("thinner", thinner_bandwidth_bps, delay_s=lan_delay_s, kind="thinner")
    topology.add_host(thinner)

    clients: List[Host] = []
    for index, bandwidth in enumerate(client_bandwidths_bps):
        extra = client_delays_s[index] if client_delays_s is not None else 0.0
        client = make_host(
            f"client-{index:03d}",
            upload_bps=bandwidth,
            delay_s=lan_delay_s,
            kind="client",
            extra_delay_s=extra,
        )
        topology.add_host(client)
        clients.append(client)
    return topology, clients, thinner


def build_bottleneck(
    bottlenecked_bandwidths_bps: Sequence[float],
    direct_bandwidths_bps: Sequence[float],
    bottleneck_bandwidth_bps: float,
    bottleneck_delay_s: float = DEFAULT_LAN_DELAY,
    thinner_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    name: str = "bottleneck",
) -> Tuple[Topology, List[Host], List[Host], Host, DuplexLink]:
    """The §7.6 topology: some clients reach the thinner through shared cable ``l``.

    Returns ``(topology, bottlenecked_clients, direct_clients, thinner, l)``.
    """
    topology = Topology(name)
    thinner = make_host("thinner", thinner_bandwidth_bps, delay_s=lan_delay_s, kind="thinner")
    topology.add_host(thinner)

    shared = DuplexLink("l", bottleneck_bandwidth_bps, delay_s=bottleneck_delay_s)
    topology.add_shared_link(shared)

    bottlenecked: List[Host] = []
    for index, bandwidth in enumerate(bottlenecked_bandwidths_bps):
        client = make_host(
            f"bn-client-{index:03d}", upload_bps=bandwidth, delay_s=lan_delay_s, kind="client"
        )
        topology.add_host(client, via=[shared])
        bottlenecked.append(client)

    direct: List[Host] = []
    for index, bandwidth in enumerate(direct_bandwidths_bps):
        client = make_host(
            f"client-{index:03d}", upload_bps=bandwidth, delay_s=lan_delay_s, kind="client"
        )
        topology.add_host(client)
        direct.append(client)

    return topology, bottlenecked, direct, thinner, shared


def build_dumbbell(
    left_bandwidths_bps: Sequence[float],
    bottleneck_bandwidth_bps: float,
    bottleneck_delay_s: float,
    thinner_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    web_server_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    name: str = "dumbbell",
) -> Tuple[Topology, List[Host], Host, Host, Host, DuplexLink]:
    """The §7.7 topology: speak-up clients plus victim host ``H`` behind cable ``m``.

    On the far side of ``m`` sit the thinner and a separate web server ``S``.
    Returns ``(topology, clients, victim, thinner, web_server, m)``.
    """
    topology = Topology(name)
    shared = DuplexLink("m", bottleneck_bandwidth_bps, delay_s=bottleneck_delay_s)
    topology.add_shared_link(shared)

    thinner = make_host("thinner", thinner_bandwidth_bps, delay_s=lan_delay_s, kind="thinner")
    web_server = make_host("webserver", web_server_bandwidth_bps, delay_s=lan_delay_s, kind="server")
    topology.add_host(thinner)
    topology.add_host(web_server)

    clients: List[Host] = []
    for index, bandwidth in enumerate(left_bandwidths_bps):
        client = make_host(
            f"client-{index:03d}", upload_bps=bandwidth, delay_s=lan_delay_s, kind="client"
        )
        topology.add_host(client, via=[shared])
        clients.append(client)

    victim = make_host("H", upload_bps=clients[0].upload_capacity_bps if clients else 2 * MBIT,
                       delay_s=lan_delay_s, kind="victim")
    topology.add_host(victim, via=[shared])
    return topology, clients, victim, thinner, web_server, shared


def build_fleet(
    client_bandwidths_bps: Sequence[float],
    thinner_shards: int,
    client_delays_s: Optional[Sequence[float]] = None,
    fleet_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    shard_bandwidth_bps: Optional[float] = None,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    name: str = "fleet",
) -> Tuple[Topology, List[Host], List[Host]]:
    """The §4.3 scale-out topology: N thinner front-ends on one core.

    A star of stars: every client and every shard hangs off the core switch,
    and each shard has its *own* access link — the per-shard provisioning
    the paper's scale-out sketch requires.  By default the fleet splits
    ``fleet_bandwidth_bps`` evenly (each shard gets ``fleet / shards``), so
    adding shards models adding identically-provisioned front-end boxes
    whose aggregate absorbs the attack; pass ``shard_bandwidth_bps`` to
    size each shard's link explicitly instead.

    Shard hosts are named ``thinner-00``, ``thinner-01``, ...  Returns
    ``(topology, client_hosts, thinner_hosts)``.  With ``thinner_shards=1``
    this is :func:`build_lan` with a one-element fleet (the host keeps the
    numbered name, so single-thinner deployments use :func:`build_lan`).
    """
    if thinner_shards < 1:
        raise TopologyError(f"thinner_shards must be at least 1, got {thinner_shards}")
    count = len(client_bandwidths_bps)
    if count == 0:
        raise TopologyError("need at least one client")
    if thinner_shards > count:
        raise TopologyError(
            f"thinner_shards ({thinner_shards}) must not exceed the client count "
            f"({count}): empty shards skew the fleet's health baselines"
        )
    if client_delays_s is not None and len(client_delays_s) != count:
        raise TopologyError("client_delays_s must match client_bandwidths_bps in length")
    per_shard = (
        shard_bandwidth_bps
        if shard_bandwidth_bps is not None
        else fleet_bandwidth_bps / thinner_shards
    )
    if per_shard <= 0:
        raise TopologyError("per-shard bandwidth must be positive")

    topology = Topology(name)
    thinners: List[Host] = []
    for index in range(thinner_shards):
        shard = make_host(
            f"thinner-{index:02d}", per_shard, delay_s=lan_delay_s, kind="thinner"
        )
        topology.add_host(shard)
        thinners.append(shard)

    clients: List[Host] = []
    for index, bandwidth in enumerate(client_bandwidths_bps):
        extra = client_delays_s[index] if client_delays_s is not None else 0.0
        client = make_host(
            f"client-{index:03d}",
            upload_bps=bandwidth,
            delay_s=lan_delay_s,
            kind="client",
            extra_delay_s=extra,
        )
        topology.add_host(client)
        clients.append(client)
    return topology, clients, thinners


# ---------------------------------------------------------------------------
# Datacenter fabrics: leaf-spine and fat-tree with ECMP and oversubscription
# ---------------------------------------------------------------------------


class FabricTopology(Topology):
    """A multi-tier switch fabric with ECMP hashed path selection.

    Hosts attach to an *edge* (a leaf switch in leaf-spine, an edge switch in
    a fat-tree); switch-to-switch cables are shared
    :class:`~repro.simnet.link.DuplexLink` objects, so the fluid network
    treats the fabric exactly like any other topology.  At every fan-out
    point (which spine? which aggregation switch? which core?) the path is
    chosen by a deterministic per-flow hash: CRC32 of the endpoint pair mixed
    with a salt derived from a dedicated ``ecmp`` seed domain.  The same
    (src, dst) pair always rides the same path — run-twice determinism and
    path-memo compatibility — while distinct pairs spread across the
    equal-cost choices.
    """

    def __init__(self, name: str, fabric_kind: str, ecmp_salt: int) -> None:
        super().__init__(name)
        self.fabric_kind = fabric_kind
        self._ecmp_salt = ecmp_salt
        self._host_edge: Dict[str, int] = {}
        #: Cross-traffic endpoint pairs created by the builder (src, dst).
        self.cross_pairs: List[Tuple[Host, Host]] = []

    def attach(self, host: Host, edge: int) -> Host:
        """Attach ``host`` to edge switch ``edge``."""
        self.add_host(host)
        self._host_edge[host.name] = edge
        return host

    def edge_of(self, host: Host) -> int:
        """The edge-switch index ``host`` is attached to."""
        self._check(host)
        return self._host_edge[host.name]

    def _ecmp(self, src: Host, dst: Host, fanout: int) -> int:
        """Deterministic equal-cost choice for the (src, dst) flow pair."""
        key = f"{self._ecmp_salt}:{src.name}>{dst.name}"
        return zlib.crc32(key.encode("utf-8")) % fanout


class LeafSpineTopology(FabricTopology):
    """Two tiers: every leaf connects to every spine (a full bipartite mesh).

    Same-leaf traffic never enters the fabric; cross-leaf traffic rides
    ``leaf -> spine -> leaf`` with the spine picked by ECMP hash.
    """

    def __init__(
        self,
        name: str,
        leaves: int,
        spines: int,
        uplink_capacity_bps: float,
        fabric_delay_s: float,
        ecmp_salt: int,
    ) -> None:
        super().__init__(name, "leaf-spine", ecmp_salt)
        self.leaves = leaves
        self.spines = spines
        self._uplinks: Dict[Tuple[int, int], DuplexLink] = {}
        for leaf in range(leaves):
            for spine in range(spines):
                link = DuplexLink(
                    f"leaf{leaf:02d}-spine{spine:02d}",
                    uplink_capacity_bps,
                    delay_s=fabric_delay_s,
                )
                self.add_shared_link(link)
                self._uplinks[(leaf, spine)] = link

    def fabric_link(self, leaf: int, spine: int) -> DuplexLink:
        """The cable between ``leaf`` and ``spine``."""
        return self._uplinks[(leaf, spine)]

    def _route(self, src: Host, dst: Host) -> List[Link]:
        src_leaf = self.edge_of(src)
        dst_leaf = self.edge_of(dst)
        if src_leaf == dst_leaf:
            return [src.access.up, dst.access.down]
        spine = self._ecmp(src, dst, self.spines)
        return [
            src.access.up,
            self._uplinks[(src_leaf, spine)].up,
            self._uplinks[(dst_leaf, spine)].down,
            dst.access.down,
        ]


class FatTreeTopology(FabricTopology):
    """The classic k-ary fat-tree: k pods of k/2 edge + k/2 aggregation
    switches, with (k/2)^2 core switches stitching the pods together.

    Core switch ``c`` attaches to aggregation switch ``c // (k/2)`` in every
    pod, so an inter-pod path commits to its aggregation switch the moment
    ECMP picks the core.  Edge switches are numbered globally
    (``pod * k/2 + local``); same-edge traffic stays on the edge switch,
    same-pod traffic rides ``edge -> agg -> edge``, and inter-pod traffic
    rides ``edge -> agg -> core -> agg -> edge``.
    """

    def __init__(
        self,
        name: str,
        k: int,
        edge_capacity_bps: float,
        core_capacity_bps: float,
        fabric_delay_s: float,
        ecmp_salt: int,
    ) -> None:
        super().__init__(name, "fat-tree", ecmp_salt)
        half = k // 2
        self.k = k
        self.half = half
        self.edges = k * half
        #: (pod, edge_local, agg_local) -> edge-to-aggregation cable.
        self._edge_agg: Dict[Tuple[int, int, int], DuplexLink] = {}
        #: (pod, core) -> aggregation-to-core cable (agg = core // half).
        self._pod_core: Dict[Tuple[int, int], DuplexLink] = {}
        for pod in range(k):
            for edge in range(half):
                for agg in range(half):
                    link = DuplexLink(
                        f"pod{pod:02d}-edge{edge:02d}-agg{agg:02d}",
                        edge_capacity_bps,
                        delay_s=fabric_delay_s,
                    )
                    self.add_shared_link(link)
                    self._edge_agg[(pod, edge, agg)] = link
            for core in range(half * half):
                link = DuplexLink(
                    f"pod{pod:02d}-core{core:02d}",
                    core_capacity_bps,
                    delay_s=fabric_delay_s,
                )
                self.add_shared_link(link)
                self._pod_core[(pod, core)] = link

    def edge_agg_link(self, pod: int, edge_local: int, agg_local: int) -> DuplexLink:
        """The cable between an edge switch and an aggregation switch."""
        return self._edge_agg[(pod, edge_local, agg_local)]

    def pod_core_link(self, pod: int, core: int) -> DuplexLink:
        """The cable between a pod's aggregation tier and core switch ``core``."""
        return self._pod_core[(pod, core)]

    def _route(self, src: Host, dst: Host) -> List[Link]:
        src_edge = self.edge_of(src)
        dst_edge = self.edge_of(dst)
        if src_edge == dst_edge:
            return [src.access.up, dst.access.down]
        src_pod, src_local = divmod(src_edge, self.half)
        dst_pod, dst_local = divmod(dst_edge, self.half)
        if src_pod == dst_pod:
            agg = self._ecmp(src, dst, self.half)
            return [
                src.access.up,
                self._edge_agg[(src_pod, src_local, agg)].up,
                self._edge_agg[(dst_pod, dst_local, agg)].down,
                dst.access.down,
            ]
        core = self._ecmp(src, dst, self.half * self.half)
        agg = core // self.half
        return [
            src.access.up,
            self._edge_agg[(src_pod, src_local, agg)].up,
            self._pod_core[(src_pod, core)].up,
            self._pod_core[(dst_pod, core)].down,
            self._edge_agg[(dst_pod, dst_local, agg)].down,
            dst.access.down,
        ]


def _validate_fabric_population(
    client_bandwidths_bps: Sequence[float],
    thinner_shards: int,
    cross_traffic_pairs: int,
) -> float:
    count = len(client_bandwidths_bps)
    if count == 0:
        raise TopologyError("need at least one client")
    if thinner_shards < 1:
        raise TopologyError(f"thinner_shards must be at least 1, got {thinner_shards}")
    if thinner_shards > count:
        raise TopologyError(
            f"thinner_shards ({thinner_shards}) must not exceed the client count "
            f"({count}): empty shards skew the fleet's health baselines"
        )
    if cross_traffic_pairs < 0:
        raise TopologyError(
            f"cross_traffic_pairs must be non-negative, got {cross_traffic_pairs}"
        )
    aggregate = float(sum(client_bandwidths_bps))
    if aggregate <= 0:
        raise TopologyError("aggregate client bandwidth must be positive")
    return aggregate


def _shard_bandwidth(
    thinner_shards: int,
    fleet_bandwidth_bps: float,
    shard_bandwidth_bps: Optional[float],
) -> float:
    per_shard = (
        shard_bandwidth_bps
        if shard_bandwidth_bps is not None
        else fleet_bandwidth_bps / thinner_shards
    )
    if per_shard <= 0:
        raise TopologyError("per-shard bandwidth must be positive")
    return per_shard


def _populate_fabric(
    topology: FabricTopology,
    edges: int,
    client_bandwidths_bps: Sequence[float],
    thinner_shards: int,
    per_shard_bps: float,
    lan_delay_s: float,
    cross_traffic_pairs: int,
    cross_traffic_bandwidth_bps: Optional[float],
    aggregate_bps: float,
) -> Tuple[List[Host], List[Host]]:
    """Attach thinners, clients, and cross-traffic pairs round-robin to edges."""
    thinners: List[Host] = []
    for index in range(thinner_shards):
        shard = make_host(
            f"thinner-{index:02d}", per_shard_bps, delay_s=lan_delay_s, kind="thinner"
        )
        topology.attach(shard, index % edges)
        thinners.append(shard)

    clients: List[Host] = []
    for index, bandwidth in enumerate(client_bandwidths_bps):
        client = make_host(
            f"client-{index:03d}", upload_bps=bandwidth, delay_s=lan_delay_s, kind="client"
        )
        topology.attach(client, index % edges)
        clients.append(client)

    cross_bps = (
        cross_traffic_bandwidth_bps
        if cross_traffic_bandwidth_bps is not None
        else aggregate_bps / len(clients)
    )
    offset = max(1, edges // 2)
    for index in range(cross_traffic_pairs):
        src_edge = index % edges
        dst_edge = (src_edge + offset) % edges
        src = make_host(
            f"xsrc-{index:02d}", upload_bps=cross_bps, delay_s=lan_delay_s, kind="cross"
        )
        dst = make_host(
            f"xdst-{index:02d}", upload_bps=cross_bps, delay_s=lan_delay_s, kind="cross"
        )
        topology.attach(src, src_edge)
        topology.attach(dst, dst_edge)
        topology.cross_pairs.append((src, dst))
    return clients, thinners


def build_leaf_spine(
    client_bandwidths_bps: Sequence[float],
    thinner_shards: int,
    leaves: int = 4,
    spines: int = 2,
    oversubscription: float = 1.0,
    fleet_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    shard_bandwidth_bps: Optional[float] = None,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    fabric_delay_s: float = DEFAULT_LAN_DELAY,
    cross_traffic_pairs: int = 0,
    cross_traffic_bandwidth_bps: Optional[float] = None,
    ecmp_seed: int = 0,
    name: str = "leaf-spine",
) -> Tuple[LeafSpineTopology, List[Host], List[Host]]:
    """A leaf-spine fabric hosting the §4.3 thinner fleet.

    Thinner shards, clients, and cross-traffic pairs are spread round-robin
    across the ``leaves`` leaf switches; every leaf connects to every one of
    the ``spines`` spine switches.  Each leaf-spine cable is sized so the
    fabric is exactly nonblocking for the aggregate client upload bandwidth
    at ``oversubscription=1.0`` and proportionally thinner above it —
    thinner access bandwidth is deliberately *excluded* from the sizing, so
    an oversubscribed core genuinely contends on the payment traffic
    converging toward the fleet.  Returns ``(topology, clients, thinners)``;
    cross-traffic endpoints are on ``topology.cross_pairs``.
    """
    if leaves < 1:
        raise TopologyError(f"leaves must be at least 1, got {leaves}")
    if spines < 1:
        raise TopologyError(f"spines must be at least 1, got {spines}")
    if oversubscription <= 0:
        raise TopologyError(f"oversubscription must be positive, got {oversubscription}")
    aggregate = _validate_fabric_population(
        client_bandwidths_bps, thinner_shards, cross_traffic_pairs
    )
    per_shard = _shard_bandwidth(thinner_shards, fleet_bandwidth_bps, shard_bandwidth_bps)
    uplink_capacity = aggregate / (leaves * spines * oversubscription)
    topology = LeafSpineTopology(
        name,
        leaves=leaves,
        spines=spines,
        uplink_capacity_bps=uplink_capacity,
        fabric_delay_s=fabric_delay_s,
        ecmp_salt=derive_seed(ecmp_seed, f"ecmp:{name}"),
    )
    clients, thinners = _populate_fabric(
        topology,
        leaves,
        client_bandwidths_bps,
        thinner_shards,
        per_shard,
        lan_delay_s,
        cross_traffic_pairs,
        cross_traffic_bandwidth_bps,
        aggregate,
    )
    return topology, clients, thinners


def build_fat_tree(
    client_bandwidths_bps: Sequence[float],
    thinner_shards: int,
    k: int = 4,
    oversubscription: float = 1.0,
    fleet_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    shard_bandwidth_bps: Optional[float] = None,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    fabric_delay_s: float = DEFAULT_LAN_DELAY,
    cross_traffic_pairs: int = 0,
    cross_traffic_bandwidth_bps: Optional[float] = None,
    ecmp_seed: int = 0,
    name: str = "fat-tree",
) -> Tuple[FatTreeTopology, List[Host], List[Host]]:
    """A k-ary fat-tree fabric hosting the §4.3 thinner fleet.

    ``k`` must be even: the fabric has ``k`` pods of ``k/2`` edge and ``k/2``
    aggregation switches plus ``(k/2)^2`` cores, i.e. ``k * k/2`` edge
    switches total.  Edge-to-aggregation cables are sized nonblocking for
    the aggregate client upload bandwidth; ``oversubscription`` thins the
    aggregation-to-core tier only (where real fat-trees economise).
    Thinners, clients, and cross-traffic pairs spread round-robin across
    the global edge switches.  Returns ``(topology, clients, thinners)``.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree k must be an even number >= 2, got {k}")
    if oversubscription <= 0:
        raise TopologyError(f"oversubscription must be positive, got {oversubscription}")
    aggregate = _validate_fabric_population(
        client_bandwidths_bps, thinner_shards, cross_traffic_pairs
    )
    per_shard = _shard_bandwidth(thinner_shards, fleet_bandwidth_bps, shard_bandwidth_bps)
    half = k // 2
    edge_capacity = aggregate / (k * half * half)
    core_capacity = edge_capacity / oversubscription
    topology = FatTreeTopology(
        name,
        k=k,
        edge_capacity_bps=edge_capacity,
        core_capacity_bps=core_capacity,
        fabric_delay_s=fabric_delay_s,
        ecmp_salt=derive_seed(ecmp_seed, f"ecmp:{name}"),
    )
    clients, thinners = _populate_fabric(
        topology,
        topology.edges,
        client_bandwidths_bps,
        thinner_shards,
        per_shard,
        lan_delay_s,
        cross_traffic_pairs,
        cross_traffic_bandwidth_bps,
        aggregate,
    )
    return topology, clients, thinners


def uniform_bandwidths(count: int, bandwidth_bps: float) -> List[float]:
    """A list of ``count`` identical access bandwidths (the common case)."""
    if count < 0:
        raise TopologyError("count must be non-negative")
    return [bandwidth_bps] * count
