"""Topologies: how hosts reach each other.

Every topology in the paper's evaluation is a star: clients and the thinner
hang off a core switch, possibly with a shared cable (the bottleneck ``l`` of
§7.6 or ``m`` of §7.7) between a group of clients and the switch.  We model
exactly that: each host attaches to the core either directly or through a
chain of :class:`~repro.simnet.link.DuplexLink` objects, and the path between
two hosts is "up through the source's chain, down through the destination's".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.constants import MBIT, milliseconds
from repro.errors import TopologyError
from repro.simnet.host import Host, make_host
from repro.simnet.link import DuplexLink, Link


class Topology:
    """A star topology with optional shared cables between hosts and the core."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._hosts: Dict[str, Host] = {}
        self._via: Dict[str, List[DuplexLink]] = {}
        self._shared: Dict[str, DuplexLink] = {}
        # Route and delay memos: topologies are static star shapes queried
        # millions of times (every flow start builds a path, every
        # encouragement computes a delay), so both are cached per endpoint
        # pair and invalidated whenever the shape changes.  Link delays and
        # host-attributed delays are immutable after construction.
        self._path_cache: Dict[Tuple[str, str], List[Link]] = {}
        self._delay_cache: Dict[Tuple[str, str], float] = {}

    # -- construction -----------------------------------------------------------

    def _invalidate_routes(self) -> None:
        self._path_cache.clear()
        self._delay_cache.clear()

    def add_shared_link(self, link: DuplexLink) -> DuplexLink:
        """Register a shared cable so it can be referenced by name."""
        if link.name in self._shared:
            raise TopologyError(f"shared link {link.name!r} already exists")
        self._shared[link.name] = link
        self._invalidate_routes()
        return link

    def add_host(self, host: Host, via: Optional[Sequence[DuplexLink]] = None) -> Host:
        """Attach ``host`` to the core, optionally through shared cables."""
        if host.name in self._hosts:
            raise TopologyError(f"host {host.name!r} already exists")
        self._hosts[host.name] = host
        chain = list(via) if via else []
        for link in chain:
            if link.name not in self._shared:
                self._shared[link.name] = link
        self._via[host.name] = chain
        self._invalidate_routes()
        return host

    # -- lookups ---------------------------------------------------------------

    @property
    def hosts(self) -> List[Host]:
        """All hosts, in insertion order."""
        return list(self._hosts.values())

    @property
    def shared_links(self) -> List[DuplexLink]:
        """All shared cables, in insertion order."""
        return list(self._shared.values())

    def host(self, name: str) -> Host:
        """Look a host up by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise TopologyError(f"unknown host {name!r}") from None

    def shared_link(self, name: str) -> DuplexLink:
        """Look a shared cable up by name."""
        try:
            return self._shared[name]
        except KeyError:
            raise TopologyError(f"unknown shared link {name!r}") from None

    def __contains__(self, host: Host) -> bool:
        return host.name in self._hosts and self._hosts[host.name] is host

    # -- routing -----------------------------------------------------------------

    def upstream_links(self, host: Host) -> List[Link]:
        """Directed links from ``host`` to the core (access uplink first)."""
        self._check(host)
        return [host.access.up] + [cable.up for cable in self._via[host.name]]

    def downstream_links(self, host: Host) -> List[Link]:
        """Directed links from the core to ``host`` (access downlink last)."""
        self._check(host)
        return [cable.down for cable in reversed(self._via[host.name])] + [host.access.down]

    def path(self, src: Host, dst: Host) -> List[Link]:
        """Directed links a flow from ``src`` to ``dst`` crosses.

        Callers must treat the returned list as read-only (it is a shared
        memo; :class:`~repro.simnet.flow.Flow` copies it anyway).
        """
        if src is dst:
            raise TopologyError(f"flow endpoints must differ (got {src.name!r} twice)")
        key = (src.name, dst.name)
        cached = self._path_cache.get(key)
        # The memo is keyed by name; verify identity so a stale host object
        # with a reused name still raises like the uncached lookup would.
        if (
            cached is not None
            and self._hosts.get(src.name) is src
            and self._hosts.get(dst.name) is dst
        ):
            return cached
        links = self.upstream_links(src) + self.downstream_links(dst)
        self._path_cache[key] = links
        return links

    def one_way_delay(self, src: Host, dst: Host) -> float:
        """Propagation delay from ``src`` to ``dst``, including host-attributed delay."""
        key = (src.name, dst.name)
        cached = self._delay_cache.get(key)
        if (
            cached is not None
            and self._hosts.get(src.name) is src
            and self._hosts.get(dst.name) is dst
        ):
            return cached
        links = self.path(src, dst)
        delay = sum(link.delay_s for link in links) + src.extra_delay_s + dst.extra_delay_s
        self._delay_cache[key] = delay
        return delay

    def rtt(self, a: Host, b: Host) -> float:
        """Round-trip propagation delay between two hosts."""
        return self.one_way_delay(a, b) + self.one_way_delay(b, a)

    def _check(self, host: Host) -> None:
        if host.name not in self._hosts or self._hosts[host.name] is not host:
            raise TopologyError(f"host {host.name!r} is not part of topology {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({self.name!r}, hosts={len(self._hosts)}, shared={len(self._shared)})"


# ---------------------------------------------------------------------------
# Builders matching the paper's Emulab setups
# ---------------------------------------------------------------------------

#: Default capacity of the thinner's access link: generous, per condition C1
#: ("the thinner needs enough bandwidth to absorb a full DDoS attack and
#: more", §4.3), and deliberately far above any aggregate client bandwidth in
#: the evaluation topologies so the thinner's own link never bottlenecks.
DEFAULT_THINNER_BANDWIDTH = 10_000 * MBIT

#: Default one-way delay of a LAN hop in the evaluation topologies.
DEFAULT_LAN_DELAY = milliseconds(1.0)


def build_lan(
    client_bandwidths_bps: Sequence[float],
    client_delays_s: Optional[Sequence[float]] = None,
    thinner_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    name: str = "lan",
) -> Tuple[Topology, List[Host], Host]:
    """The §7.2–§7.5 topology: N clients and the thinner on one LAN.

    ``client_delays_s`` gives each client's one-way host-attributed delay
    (used by the RTT-heterogeneity experiment, Figure 7); it defaults to zero
    extra delay beyond the LAN hop.
    """
    count = len(client_bandwidths_bps)
    if count == 0:
        raise TopologyError("need at least one client")
    if client_delays_s is not None and len(client_delays_s) != count:
        raise TopologyError("client_delays_s must match client_bandwidths_bps in length")

    topology = Topology(name)
    thinner = make_host("thinner", thinner_bandwidth_bps, delay_s=lan_delay_s, kind="thinner")
    topology.add_host(thinner)

    clients: List[Host] = []
    for index, bandwidth in enumerate(client_bandwidths_bps):
        extra = client_delays_s[index] if client_delays_s is not None else 0.0
        client = make_host(
            f"client-{index:03d}",
            upload_bps=bandwidth,
            delay_s=lan_delay_s,
            kind="client",
            extra_delay_s=extra,
        )
        topology.add_host(client)
        clients.append(client)
    return topology, clients, thinner


def build_bottleneck(
    bottlenecked_bandwidths_bps: Sequence[float],
    direct_bandwidths_bps: Sequence[float],
    bottleneck_bandwidth_bps: float,
    bottleneck_delay_s: float = DEFAULT_LAN_DELAY,
    thinner_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    name: str = "bottleneck",
) -> Tuple[Topology, List[Host], List[Host], Host, DuplexLink]:
    """The §7.6 topology: some clients reach the thinner through shared cable ``l``.

    Returns ``(topology, bottlenecked_clients, direct_clients, thinner, l)``.
    """
    topology = Topology(name)
    thinner = make_host("thinner", thinner_bandwidth_bps, delay_s=lan_delay_s, kind="thinner")
    topology.add_host(thinner)

    shared = DuplexLink("l", bottleneck_bandwidth_bps, delay_s=bottleneck_delay_s)
    topology.add_shared_link(shared)

    bottlenecked: List[Host] = []
    for index, bandwidth in enumerate(bottlenecked_bandwidths_bps):
        client = make_host(
            f"bn-client-{index:03d}", upload_bps=bandwidth, delay_s=lan_delay_s, kind="client"
        )
        topology.add_host(client, via=[shared])
        bottlenecked.append(client)

    direct: List[Host] = []
    for index, bandwidth in enumerate(direct_bandwidths_bps):
        client = make_host(
            f"client-{index:03d}", upload_bps=bandwidth, delay_s=lan_delay_s, kind="client"
        )
        topology.add_host(client)
        direct.append(client)

    return topology, bottlenecked, direct, thinner, shared


def build_dumbbell(
    left_bandwidths_bps: Sequence[float],
    bottleneck_bandwidth_bps: float,
    bottleneck_delay_s: float,
    thinner_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    web_server_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    name: str = "dumbbell",
) -> Tuple[Topology, List[Host], Host, Host, Host, DuplexLink]:
    """The §7.7 topology: speak-up clients plus victim host ``H`` behind cable ``m``.

    On the far side of ``m`` sit the thinner and a separate web server ``S``.
    Returns ``(topology, clients, victim, thinner, web_server, m)``.
    """
    topology = Topology(name)
    shared = DuplexLink("m", bottleneck_bandwidth_bps, delay_s=bottleneck_delay_s)
    topology.add_shared_link(shared)

    thinner = make_host("thinner", thinner_bandwidth_bps, delay_s=lan_delay_s, kind="thinner")
    web_server = make_host("webserver", web_server_bandwidth_bps, delay_s=lan_delay_s, kind="server")
    topology.add_host(thinner)
    topology.add_host(web_server)

    clients: List[Host] = []
    for index, bandwidth in enumerate(left_bandwidths_bps):
        client = make_host(
            f"client-{index:03d}", upload_bps=bandwidth, delay_s=lan_delay_s, kind="client"
        )
        topology.add_host(client, via=[shared])
        clients.append(client)

    victim = make_host("H", upload_bps=clients[0].upload_capacity_bps if clients else 2 * MBIT,
                       delay_s=lan_delay_s, kind="victim")
    topology.add_host(victim, via=[shared])
    return topology, clients, victim, thinner, web_server, shared


def build_fleet(
    client_bandwidths_bps: Sequence[float],
    thinner_shards: int,
    client_delays_s: Optional[Sequence[float]] = None,
    fleet_bandwidth_bps: float = DEFAULT_THINNER_BANDWIDTH,
    shard_bandwidth_bps: Optional[float] = None,
    lan_delay_s: float = DEFAULT_LAN_DELAY,
    name: str = "fleet",
) -> Tuple[Topology, List[Host], List[Host]]:
    """The §4.3 scale-out topology: N thinner front-ends on one core.

    A star of stars: every client and every shard hangs off the core switch,
    and each shard has its *own* access link — the per-shard provisioning
    the paper's scale-out sketch requires.  By default the fleet splits
    ``fleet_bandwidth_bps`` evenly (each shard gets ``fleet / shards``), so
    adding shards models adding identically-provisioned front-end boxes
    whose aggregate absorbs the attack; pass ``shard_bandwidth_bps`` to
    size each shard's link explicitly instead.

    Shard hosts are named ``thinner-00``, ``thinner-01``, ...  Returns
    ``(topology, client_hosts, thinner_hosts)``.  With ``thinner_shards=1``
    this is :func:`build_lan` with a one-element fleet (the host keeps the
    numbered name, so single-thinner deployments use :func:`build_lan`).
    """
    if thinner_shards < 1:
        raise TopologyError(f"thinner_shards must be at least 1, got {thinner_shards}")
    count = len(client_bandwidths_bps)
    if count == 0:
        raise TopologyError("need at least one client")
    if client_delays_s is not None and len(client_delays_s) != count:
        raise TopologyError("client_delays_s must match client_bandwidths_bps in length")
    per_shard = (
        shard_bandwidth_bps
        if shard_bandwidth_bps is not None
        else fleet_bandwidth_bps / thinner_shards
    )
    if per_shard <= 0:
        raise TopologyError("per-shard bandwidth must be positive")

    topology = Topology(name)
    thinners: List[Host] = []
    for index in range(thinner_shards):
        shard = make_host(
            f"thinner-{index:02d}", per_shard, delay_s=lan_delay_s, kind="thinner"
        )
        topology.add_host(shard)
        thinners.append(shard)

    clients: List[Host] = []
    for index, bandwidth in enumerate(client_bandwidths_bps):
        extra = client_delays_s[index] if client_delays_s is not None else 0.0
        client = make_host(
            f"client-{index:03d}",
            upload_bps=bandwidth,
            delay_s=lan_delay_s,
            kind="client",
            extra_delay_s=extra,
        )
        topology.add_host(client)
        clients.append(client)
    return topology, clients, thinners


def uniform_bandwidths(count: int, bandwidth_bps: float) -> List[float]:
    """A list of ``count`` identical access bandwidths (the common case)."""
    if count < 0:
        raise TopologyError("count must be non-negative")
    return [bandwidth_bps] * count
