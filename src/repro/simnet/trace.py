"""Lightweight event tracing.

Tracing is off by default (the hot path only pays an ``is not None`` check).
Experiments and tests that want to inspect the sequence of flow starts,
auction decisions, admissions and so on attach a :class:`Tracer` and filter
its records afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced event: a kind plus arbitrary fields."""

    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None

    def get(self, name: str, default: Any = None) -> Any:
        """Field lookup with a default, like ``dict.get``."""
        return self.fields.get(name, default)


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally bounded in size."""

    def __init__(self, max_records: Optional[int] = None) -> None:
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self.enabled = True

    def record(self, kind: str, **fields: Any) -> None:
        """Append a record (dropping it if the bound has been reached)."""
        if not self.enabled:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(kind, fields))

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind."""
        return [record for record in self.records if record.kind == kind]

    def where(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """All records matching ``predicate``."""
        return [record for record in self.records if predicate(record)]

    def kinds(self) -> Dict[str, int]:
        """Histogram of record kinds."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[TraceRecord]:
        return iter(self.records)
