"""TCP effects that matter to speak-up: slow start and ACK clocking.

§3.4 of the paper points out two ways real transport behaviour erodes a good
client's payment rate: each HTTP POST begins in TCP slow start, and there is
a quiescent gap between POSTs.  The gap is handled by the payment channel;
this module models the ramp: a flow's private rate cap starts at roughly one
window per RTT and doubles every RTT until it reaches the path ceiling, after
which the cap is removed and fair sharing alone governs the rate.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.constants import DEFAULT_MSS_BYTES
from repro.errors import FlowError
from repro.simnet.engine import Engine
from repro.simnet.flow import Flow, FlowState
from repro.simnet.link import path_min_capacity
from repro.simnet.network import FluidNetwork

#: Initial congestion window in segments (RFC 3390-era value, matching the
#: paper's 2006 setting).
INITIAL_WINDOW_SEGMENTS = 2


class SlowStartRamp:
    """Drives a flow's rate cap through an exponential slow-start ramp."""

    def __init__(
        self,
        network: FluidNetwork,
        mss_bytes: float = DEFAULT_MSS_BYTES,
        initial_window_segments: int = INITIAL_WINDOW_SEGMENTS,
    ) -> None:
        if mss_bytes <= 0:
            raise FlowError("mss_bytes must be positive")
        if initial_window_segments <= 0:
            raise FlowError("initial_window_segments must be positive")
        self.network = network
        self.mss_bytes = mss_bytes
        self.initial_window_segments = initial_window_segments

    @property
    def engine(self) -> Engine:
        return self.network.engine

    def initial_rate(self, rtt: float) -> float:
        """Rate implied by the initial window over one RTT, in bits/s."""
        if rtt <= 0:
            return float("inf")
        return self.initial_window_segments * self.mss_bytes * 8.0 / rtt

    def attach(self, flow: Flow, rtt: float, ceiling_bps: Optional[float] = None) -> None:
        """Cap ``flow`` at the slow-start rate and schedule doublings.

        ``ceiling_bps`` defaults to the narrowest link on the flow's path;
        when the ramp reaches the ceiling the cap is removed entirely so the
        flow competes with its full fair share.
        """
        if ceiling_bps is None:
            ceiling_bps = path_min_capacity(flow.path)
        if rtt <= 0:
            # Effectively a zero-delay LAN: slow start is instantaneous.
            self.network.set_rate_cap(flow, None)
            return
        cap = self.initial_rate(rtt)
        if cap >= ceiling_bps:
            self.network.set_rate_cap(flow, None)
            return
        self.network.set_rate_cap(flow, cap)
        self.engine.schedule_after(rtt, self._double, flow, rtt, ceiling_bps, cap)

    def _double(self, flow: Flow, rtt: float, ceiling_bps: float, cap: float) -> None:
        if flow.state != FlowState.ACTIVE:
            return
        cap *= 2.0
        if cap >= ceiling_bps:
            self.network.set_rate_cap(flow, None)
            return
        self.network.set_rate_cap(flow, cap)
        self.engine.schedule_after(rtt, self._double, flow, rtt, ceiling_bps, cap)


def slow_start_rounds(size_bytes: float, mss_bytes: float = DEFAULT_MSS_BYTES,
                      initial_window_segments: int = INITIAL_WINDOW_SEGMENTS) -> int:
    """Number of RTT rounds slow start needs to transfer ``size_bytes``.

    Assumes the transfer never leaves slow start (no loss) and that the
    bottleneck never binds — callers combine this with a bandwidth-limited
    term to estimate full transfer latency.
    """
    if size_bytes <= 0:
        return 0
    segments = math.ceil(size_bytes / mss_bytes)
    window = initial_window_segments
    sent = 0
    rounds = 0
    while sent < segments:
        sent += window
        window *= 2
        rounds += 1
    return rounds


def slow_start_transfer_time(
    size_bytes: float,
    rtt: float,
    bottleneck_bps: float,
    mss_bytes: float = DEFAULT_MSS_BYTES,
    initial_window_segments: int = INITIAL_WINDOW_SEGMENTS,
) -> float:
    """Estimate the latency of a fresh TCP transfer of ``size_bytes``.

    The classic two-regime approximation: exponential window growth until the
    pipe (bandwidth-delay product) is full, then transmission at bottleneck
    rate.  Used by the §7.7 HTTP-download model and as a cross-check for the
    simulated payment-channel ramp.
    """
    if size_bytes <= 0:
        return 0.0
    if rtt <= 0:
        return size_bytes * 8.0 / bottleneck_bps
    if bottleneck_bps <= 0:
        raise FlowError("bottleneck_bps must be positive")

    bdp_bytes = bottleneck_bps * rtt / 8.0
    window_bytes = initial_window_segments * mss_bytes
    elapsed = 0.0
    remaining = size_bytes

    # Slow-start rounds: each round ships the current window then doubles it.
    while remaining > 0 and window_bytes < bdp_bytes:
        shipped = min(window_bytes, remaining)
        remaining -= shipped
        elapsed += rtt
        window_bytes *= 2
    if remaining <= 0:
        return elapsed

    # Pipe is full: the rest drains at the bottleneck rate, plus half an RTT
    # for the tail to propagate.
    elapsed += remaining * 8.0 / bottleneck_bps + rtt / 2.0
    return elapsed
