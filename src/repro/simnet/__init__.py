"""Discrete-event fluid-flow network simulator.

This subpackage is the substrate on which the speak-up reproduction runs.
It provides a deterministic event engine (:mod:`repro.simnet.engine`),
hosts and links (:mod:`repro.simnet.host`, :mod:`repro.simnet.link`),
topology builders matching the paper's Emulab setups
(:mod:`repro.simnet.topology`), and a fluid-flow bandwidth model with
max-min fair sharing and a TCP slow-start ramp
(:mod:`repro.simnet.flow`, :mod:`repro.simnet.bandwidth`,
:mod:`repro.simnet.network`, :mod:`repro.simnet.tcp`).
"""

from repro.simnet.engine import Engine, Event
from repro.simnet.link import Link, DuplexLink
from repro.simnet.host import Host
from repro.simnet.flow import Flow, FlowState
from repro.simnet.bandwidth import max_min_fair_rates
from repro.simnet.network import FluidNetwork
from repro.simnet.tcp import SlowStartRamp, slow_start_transfer_time
from repro.simnet.topology import Topology, build_lan, build_bottleneck, build_dumbbell
from repro.simnet.trace import Tracer, TraceRecord

__all__ = [
    "Engine",
    "Event",
    "Link",
    "DuplexLink",
    "Host",
    "Flow",
    "FlowState",
    "max_min_fair_rates",
    "FluidNetwork",
    "SlowStartRamp",
    "slow_start_transfer_time",
    "Topology",
    "build_lan",
    "build_bottleneck",
    "build_dumbbell",
    "Tracer",
    "TraceRecord",
]
