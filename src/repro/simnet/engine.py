"""Discrete-event simulation engine.

The engine maintains a priority queue of events keyed by simulated time and
a monotonically increasing sequence number (so that events scheduled for the
same instant fire in scheduling order, which keeps runs deterministic).
Everything else in the package — flows completing, auctions firing, clients
issuing requests — is expressed as engine events.

Two hot-path design points:

* The heap stores ``(time, seq, event)`` tuples rather than bare
  :class:`Event` objects, so every sift comparison is a C-level tuple
  compare of two floats/ints instead of a Python-level ``Event.__lt__``
  call (which would also allocate two tuples per comparison).
* Cancellation is lazy: :meth:`Event.cancel` only flags the event, and the
  engine skips flagged entries when they surface.  When cancelled events
  outnumber live ones (heap-compaction), the queue is rebuilt in place —
  see :attr:`Engine.COMPACT_MIN_QUEUE` for the exact policy.

The engine also hosts the *flush hook* protocol used by the fluid network's
deferred rate recomputation: components register a callback via
:meth:`Engine.add_flush_callback` and arm it with :meth:`Engine.request_flush`
whenever they have deferred work; the engine guarantees every armed flush
runs before the simulated clock next advances (before each event fires and
before a ``run(until=...)`` fast-forwards an idle clock), which is exactly
the window in which deferred rate updates are still exact.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SchedulingError


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Engine.schedule_at` and
    :meth:`Engine.schedule_after` so the caller can cancel them later.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "fired", "_engine")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple,
                 kwargs: Optional[dict], engine: Optional["Engine"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        #: ``None`` (not ``{}``) when the callback takes no keyword arguments;
        #: the common case then skips the ``**`` unpacking entirely.
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            # ``Engine._note_cancelled``, inlined: cancellation sits on the
            # completion-reschedule hot path.
            engine._cancelled_in_queue += 1
            if (
                len(engine._queue) >= engine.COMPACT_MIN_QUEUE
                and engine._cancelled_in_queue * 2 > len(engine._queue)
            ):
                engine._compact()

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class Engine:
    """A deterministic discrete-event engine with a simulated clock."""

    #: Compact the queue when cancelled events outnumber live ones (and the
    #: queue is big enough for a rebuild to be worth the heapify).
    COMPACT_MIN_QUEUE = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        #: Heap of ``(time, seq, Event)`` entries; see the module docstring.
        self._queue: list = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._needs_flush = False
        self._flush_callbacks: List[Callable[[], None]] = []
        #: The ``until`` of the current/most recent :meth:`run`, or ``None``.
        #: Purely advisory — workload generators (the clients' batched
        #: arrival pregeneration) use it to avoid pregenerating events far
        #: past the end of the run.
        self.run_horizon: Optional[float] = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still in the queue."""
        return len(self._queue) - self._cancelled_in_queue

    # -- deferred-work flushing -------------------------------------------------

    def add_flush_callback(self, callback: Callable[[], None]) -> None:
        """Register a callback to run before the clock next advances.

        The callback fires only after :meth:`request_flush` arms it, and the
        engine disarms before calling, so a callback that defers new work
        re-arms naturally.  Used by
        :class:`~repro.simnet.network.FluidNetwork` to batch rate
        recomputation; see that class for the dirty-set protocol.
        """
        self._flush_callbacks.append(callback)

    def request_flush(self) -> None:
        """Arm the registered flush callbacks (idempotent, O(1))."""
        self._needs_flush = True

    def _flush(self) -> None:
        self._needs_flush = False
        for callback in self._flush_callbacks:
            callback()

    # -- cancellation bookkeeping ----------------------------------------------

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts the heap when it is mostly dead."""
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_QUEUE
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and rebuild the heap in place.

        In place matters: the run loop holds a reference to the queue list,
        so compaction must mutate it (slice assignment) rather than rebind
        ``self._queue``.
        """
        self._queue[:] = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    # -- scheduling ------------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable, *args, **kwargs) -> Event:
        """Schedule ``callback(*args, **kwargs)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time:.6f}, which is before now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, kwargs or None, engine=self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule_after(self, delay: float, callback: Callable, *args, **kwargs) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"delay must be non-negative, got {delay}")
        # ``schedule_at(self._now + delay, ...)``, inlined — this is the
        # hottest scheduling entry point (completion reschedules).
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, kwargs or None, engine=self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def call_soon(self, callback: Callable, *args, **kwargs) -> Event:
        """Schedule ``callback`` at the current simulated time."""
        return self.schedule_at(self._now, callback, *args, **kwargs)

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        if self._needs_flush:
            self._flush()
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._now = time
            event.fired = True
            self._events_processed += 1
            kwargs = event.kwargs
            if kwargs:
                event.callback(*event.args, **kwargs)
            else:
                event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulated time at which the run stopped.  When ``until``
        is given, the clock is advanced to exactly ``until`` even if the last
        event fired earlier, so back-to-back ``run`` calls compose naturally.
        """
        self._running = True
        self._stopped = False
        self.run_horizon = until
        fired = 0
        queue = self._queue
        try:
            while True:
                if self._needs_flush:
                    # Re-evaluate every exit condition after flushing: the
                    # flush may itself schedule events within the horizon
                    # (or re-arm the flag), and every break below must be
                    # taken on settled state — otherwise the final clock
                    # advance could strand an event in the past.
                    self._flush()
                    continue
                if not queue or self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                entry = queue[0]
                event = entry[2]
                if event.cancelled:
                    heapq.heappop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                heapq.heappop(queue)
                self._now = time
                event.fired = True
                self._events_processed += 1
                kwargs = event.kwargs
                if kwargs:
                    event.callback(*event.args, **kwargs)
                else:
                    event.callback(*event.args)
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def drain(self) -> int:
        """Run every remaining event; return how many fired."""
        fired = 0
        while self.step():
            fired += 1
        return fired

    # -- periodic helpers --------------------------------------------------------

    def schedule_every(
        self,
        interval: float,
        callback: Callable,
        *args,
        start_after: Optional[float] = None,
        **kwargs,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds until cancelled."""
        if interval <= 0:
            raise SchedulingError(f"interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, args, kwargs)
        first = interval if start_after is None else start_after
        task._arm(first)
        return task


class PeriodicTask:
    """A repeating event created by :meth:`Engine.schedule_every`."""

    def __init__(self, engine: Engine, interval: float, callback: Callable, args: tuple, kwargs: dict):
        self._engine = engine
        self.interval = interval
        self._callback = callback
        self._args = args
        self._kwargs = kwargs
        self._event: Optional[Event] = None
        self.cancelled = False
        self.fire_count = 0

    def _arm(self, delay: float) -> None:
        self._event = self._engine.schedule_after(delay, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fire_count += 1
        self._callback(*self._args, **self._kwargs)
        if not self.cancelled:
            self._arm(self.interval)

    def cancel(self) -> None:
        """Stop the periodic task."""
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
