"""Links: unidirectional fluid capacity constraints with propagation delay.

The fluid model treats a link as a capacity that concurrent flows share
(max-min fairly, computed in :mod:`repro.simnet.bandwidth`) plus a one-way
propagation delay that contributes to round-trip times.  A physical cable is
represented by a :class:`DuplexLink`, which is simply a pair of directed
:class:`Link` objects, because upload and download contention are independent
in all of the paper's experiments (e.g. §7.7's bottleneck is congested in the
upload direction by payment traffic while the download direction carries the
victim transfer).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TopologyError


class Link:
    """A single directed link with a capacity in bits/s and a one-way delay."""

    __slots__ = ("name", "capacity_bps", "delay_s", "buffer_bytes", "_flow_count")

    #: Default drop-tail buffer, sized like a small home-router queue.  Only
    #: the cross-traffic model (Figure 9) consults it.
    DEFAULT_BUFFER_BYTES = 75_000

    def __init__(
        self,
        name: str,
        capacity_bps: float,
        delay_s: float = 0.0,
        buffer_bytes: Optional[float] = None,
    ) -> None:
        if capacity_bps <= 0:
            raise TopologyError(f"link {name!r}: capacity must be positive, got {capacity_bps}")
        if delay_s < 0:
            raise TopologyError(f"link {name!r}: delay must be non-negative, got {delay_s}")
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self.delay_s = float(delay_s)
        self.buffer_bytes = float(buffer_bytes if buffer_bytes is not None else self.DEFAULT_BUFFER_BYTES)
        self._flow_count = 0

    @property
    def flow_count(self) -> int:
        """Number of active flows currently crossing this link."""
        return self._flow_count

    def max_queueing_delay(self) -> float:
        """Worst-case drop-tail queueing delay (full buffer drained at capacity)."""
        return (self.buffer_bytes * 8.0) / self.capacity_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, {self.capacity_bps / 1e6:.3f} Mbit/s, "
            f"{self.delay_s * 1e3:.1f} ms)"
        )


class DuplexLink:
    """A bidirectional link: independent :class:`Link` objects per direction."""

    __slots__ = ("name", "up", "down")

    def __init__(
        self,
        name: str,
        capacity_bps: float,
        delay_s: float = 0.0,
        down_capacity_bps: Optional[float] = None,
        buffer_bytes: Optional[float] = None,
    ) -> None:
        self.name = name
        self.up = Link(f"{name}.up", capacity_bps, delay_s, buffer_bytes)
        self.down = Link(
            f"{name}.down",
            down_capacity_bps if down_capacity_bps is not None else capacity_bps,
            delay_s,
            buffer_bytes,
        )

    @property
    def delay_s(self) -> float:
        """One-way propagation delay of the cable."""
        return self.up.delay_s

    @property
    def rtt(self) -> float:
        """Round-trip contribution of this cable alone."""
        return self.up.delay_s + self.down.delay_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DuplexLink({self.name!r}, up={self.up.capacity_bps / 1e6:.3f} Mbit/s)"


def path_delay(links: list[Link]) -> float:
    """One-way propagation delay along a list of directed links."""
    return sum(link.delay_s for link in links)


def path_min_capacity(links: list[Link]) -> float:
    """The narrowest capacity along a path (the most a single flow could get)."""
    if not links:
        raise TopologyError("path must contain at least one link")
    return min(link.capacity_bps for link in links)
