"""Links: unidirectional fluid capacity constraints with propagation delay.

The fluid model treats a link as a capacity that concurrent flows share
(max-min fairly, computed in :mod:`repro.simnet.bandwidth`) plus a one-way
propagation delay that contributes to round-trip times.  A physical cable is
represented by a :class:`DuplexLink`, which is simply a pair of directed
:class:`Link` objects, because upload and download contention are independent
in all of the paper's experiments (e.g. §7.7's bottleneck is congested in the
upload direction by payment traffic while the download direction carries the
victim transfer).

Runtime bookkeeping lives directly on the link as ``__slots__`` fields
(rather than in side dictionaries on the network), so the allocator's hot
path reads and writes plain attributes:

* ``_flows`` — the active flows currently crossing the link;
* ``_potential`` — the link's *potential load* in bits/s, an upper bound on
  the aggregate rate its flows could ever jointly push through it.  A link
  whose capacity covers its potential load can never saturate and therefore
  never constrains anyone, which is what keeps rate recomputation scoped to
  a small component of the network (see
  :class:`~repro.simnet.network.FluidNetwork`).
* ``_entry_sums`` — per *entry link* partial sums backing the potential
  load.  Flows are grouped by the first link of their path (a client's
  access uplink): the group's joint contribution to any later link is capped
  by that entry link's capacity, because the group's aggregate rate already
  had to fit through it.  Without this grouping a well-provisioned core link
  crossed by thousands of flows would be flagged as potentially saturated
  (every flow counted at its full individual bound) and every rate update
  would degenerate into a global recomputation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TopologyError

#: Entry-group sums at or below this many bits/s are snapped to zero (and
#: dropped) so repeated attach/detach cycles cannot accumulate float drift.
_LOAD_EPSILON = 1e-9


class Link:
    """A single directed link with a capacity in bits/s and a one-way delay."""

    __slots__ = (
        "name",
        "capacity_bps",
        "base_capacity_bps",
        "delay_s",
        "buffer_bytes",
        "is_up",
        "_flow_count",
        "_flows",
        "_entry_sums",
        "_lid",
        "_soa",
        "_spot",
    )

    #: Default drop-tail buffer, sized like a small home-router queue.  Only
    #: the cross-traffic model (Figure 9) consults it.
    DEFAULT_BUFFER_BYTES = 75_000

    def __init__(
        self,
        name: str,
        capacity_bps: float,
        delay_s: float = 0.0,
        buffer_bytes: Optional[float] = None,
    ) -> None:
        if capacity_bps <= 0:
            raise TopologyError(f"link {name!r}: capacity must be positive, got {capacity_bps}")
        if delay_s < 0:
            raise TopologyError(f"link {name!r}: delay must be non-negative, got {delay_s}")
        self.name = name
        self.capacity_bps = float(capacity_bps)
        #: The configured capacity, the fixed point :meth:`set_capacity_factor`
        #: scales from — so repeated degrades never compound and ``factor=1.0``
        #: restores the original bit-for-bit.
        self.base_capacity_bps = float(capacity_bps)
        self.delay_s = float(delay_s)
        self.buffer_bytes = float(buffer_bytes if buffer_bytes is not None else self.DEFAULT_BUFFER_BYTES)
        #: Administrative liveness: the fault injector marks a killed shard's
        #: access link down (and stops its flows); capacity is untouched so
        #: allocator bookkeeping never sees a zero-capacity link.
        self.is_up = True
        self._flow_count = 0
        self._flows: Dict = {}
        self._entry_sums: Dict[int, float] = {}
        #: Dense id in the owning network's :class:`~repro.simnet.soa.SoAStore`
        #: (-1 until registered) and the store itself; the potential load
        #: lives in the store's ``l_pot`` array while registered, in the
        #: ``_spot`` scalar fallback otherwise.
        self._lid = -1
        self._soa = None
        self._spot = 0.0

    @property
    def flow_count(self) -> int:
        """Number of active flows currently crossing this link."""
        return self._flow_count

    @property
    def _potential(self) -> float:
        soa = self._soa
        if soa is not None:
            return soa.lm_pot[self._lid]
        return self._spot

    @_potential.setter
    def _potential(self, value: float) -> None:
        soa = self._soa
        if soa is not None:
            soa.lm_pot[self._lid] = value
        else:
            self._spot = value

    def max_queueing_delay(self) -> float:
        """Worst-case drop-tail queueing delay (full buffer drained at capacity)."""
        return (self.buffer_bytes * 8.0) / self.capacity_bps

    def set_capacity_factor(self, factor: float, network=None) -> None:
        """Scale the capacity to ``factor * base_capacity_bps``.

        The gray-failure ``degrade`` fault: the link stays up (``is_up`` is
        untouched) but carries less.  Always scales from the *base* capacity,
        so degrades are absolute rather than compounding and ``factor=1.0``
        restores the configured capacity exactly.  With a ``network`` the
        change flows through :meth:`FluidNetwork.set_link_capacity`, which
        re-derives every crossing flow's bound and reallocates rates through
        both the scalar and vectorized waterfill paths; without one (links
        not yet attached to a network) only the stored capacity moves.
        """
        if factor <= 0:
            raise TopologyError(
                f"link {self.name!r}: capacity factor must be positive, got {factor}"
            )
        target = self.base_capacity_bps if factor == 1.0 else self.base_capacity_bps * factor
        if network is not None:
            network.set_link_capacity(self, target)
            return
        self.capacity_bps = target
        if self._soa is not None:
            self._soa.l_cap[self._lid] = target

    # -- allocator bookkeeping (driven by FluidNetwork) -------------------------

    def _reset_runtime(self) -> None:
        """Forget all allocator state (a new network took over the topology)."""
        self.capacity_bps = self.base_capacity_bps
        self._flow_count = 0
        self._flows = {}
        self._entry_sums = {}
        self._lid = -1
        self._soa = None
        self._spot = 0.0

    def _add_entry_load(self, entry: "Link", delta: float) -> None:
        """Shift the load contributed via ``entry`` by ``delta`` bits/s.

        The group's contribution to this link's potential load is capped at
        ``entry``'s capacity — the flows all squeezed through ``entry`` first
        — so the potential only moves by the change in ``min(cap, sum)``.
        """
        sums = self._entry_sums
        key = id(entry)
        old = sums.get(key, 0.0)
        new = old + delta
        cap = entry.capacity_bps
        old_capped = cap if old > cap else old
        if new <= _LOAD_EPSILON:
            sums.pop(key, None)
            new_capped = 0.0
        else:
            sums[key] = new
            new_capped = cap if new > cap else new
        soa = self._soa
        if soa is not None:
            soa.lm_pot[self._lid] += new_capped - old_capped
        else:
            self._spot += new_capped - old_capped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, {self.capacity_bps / 1e6:.3f} Mbit/s, "
            f"{self.delay_s * 1e3:.1f} ms)"
        )


class DuplexLink:
    """A bidirectional link: independent :class:`Link` objects per direction."""

    __slots__ = ("name", "up", "down")

    def __init__(
        self,
        name: str,
        capacity_bps: float,
        delay_s: float = 0.0,
        down_capacity_bps: Optional[float] = None,
        buffer_bytes: Optional[float] = None,
    ) -> None:
        self.name = name
        self.up = Link(f"{name}.up", capacity_bps, delay_s, buffer_bytes)
        self.down = Link(
            f"{name}.down",
            down_capacity_bps if down_capacity_bps is not None else capacity_bps,
            delay_s,
            buffer_bytes,
        )

    @property
    def delay_s(self) -> float:
        """One-way propagation delay of the cable."""
        return self.up.delay_s

    @property
    def rtt(self) -> float:
        """Round-trip contribution of this cable alone."""
        return self.up.delay_s + self.down.delay_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DuplexLink({self.name!r}, up={self.up.capacity_bps / 1e6:.3f} Mbit/s)"


def path_delay(links: list[Link]) -> float:
    """One-way propagation delay along a list of directed links."""
    return sum(link.delay_s for link in links)


def path_min_capacity(links: list[Link]) -> float:
    """The narrowest capacity along a path (the most a single flow could get)."""
    if not links:
        raise TopologyError("path must contain at least one link")
    return min(link.capacity_bps for link in links)
