"""Hosts: endpoints with access links.

A host owns a duplex access link.  The topology decides what sits between a
host's access link and its peer's access link (nothing for a LAN, a shared
bottleneck cable for the §7.6/§7.7 topologies).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TopologyError
from repro.simnet.link import DuplexLink, Link


class Host:
    """A network endpoint (client, thinner, web server, ...)."""

    __slots__ = ("name", "access", "kind", "extra_delay_s")

    def __init__(
        self,
        name: str,
        access: DuplexLink,
        kind: str = "host",
        extra_delay_s: float = 0.0,
    ) -> None:
        if extra_delay_s < 0:
            raise TopologyError(f"host {name!r}: extra delay must be non-negative")
        self.name = name
        self.access = access
        self.kind = kind
        #: Additional one-way delay attributed to the host itself (used by the
        #: RTT-heterogeneity experiment, Figure 7).
        self.extra_delay_s = extra_delay_s

    @property
    def uplink(self) -> Link:
        """Directed access link carrying traffic from this host into the network."""
        return self.access.up

    @property
    def downlink(self) -> Link:
        """Directed access link carrying traffic from the network to this host."""
        return self.access.down

    @property
    def upload_capacity_bps(self) -> float:
        """The host's upload bandwidth — its speak-up 'wealth'."""
        return self.access.up.capacity_bps

    @property
    def download_capacity_bps(self) -> float:
        """The host's download bandwidth."""
        return self.access.down.capacity_bps

    def one_way_delay_to_access(self) -> float:
        """One-way delay from the host to the far end of its access link."""
        return self.access.delay_s + self.extra_delay_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Host({self.name!r}, kind={self.kind!r}, "
            f"up={self.upload_capacity_bps / 1e6:.2f} Mbit/s)"
        )


def make_host(
    name: str,
    upload_bps: float,
    download_bps: Optional[float] = None,
    delay_s: float = 0.0,
    kind: str = "host",
    extra_delay_s: float = 0.0,
) -> Host:
    """Convenience constructor building the access link along with the host."""
    access = DuplexLink(
        f"{name}.access",
        capacity_bps=upload_bps,
        delay_s=delay_s,
        down_capacity_bps=download_bps if download_bps is not None else upload_bps,
    )
    return Host(name, access, kind=kind, extra_delay_s=extra_delay_s)
