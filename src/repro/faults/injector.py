"""Execute a :class:`~repro.faults.spec.FaultPlan` against a live fleet.

The injector is the runtime half of the fault layer.  It is built by the
:class:`~repro.core.frontend.Deployment` only when the configured plan has
events — an empty plan wires nothing, schedules nothing, and draws nothing,
keeping fault-free runs byte-identical to deployments with no plan at all.

What a **kill** does, in order (all within one engine event):

1. the shard leaves every dispatch candidate set — the
   :class:`~repro.core.fleet.ShardRouter` liveness mask and, in pooled
   admission, the :class:`~repro.core.fleet.PooledAdmission` offer rotation;
2. the shard's thinner evicts its contenders: payment channels close (their
   POST flows stop), owners are dropped with reason ``"shard-killed"``, and
   the clients hear about it after one propagation delay — exactly the
   book-keeping of any other thinner drop, so client accounting stays
   conserved;
3. the request the shard holds in its server slot (its own ``c/N``
   partition, or the shared pooled slot) is aborted and the slot reclaimed —
   in pooled mode the freed slot is immediately re-offered to the surviving
   shards;
4. each client pinned to the shard aborts its in-flight request uploads
   (connection reset; counted as orphaned) and stops issuing — new arrivals
   back up in its backlog, subject to the normal 10-second denial sweep;
5. the shard host's access link is marked down and swept of any residual
   flows;
6. every affected client schedules a re-pin after a per-client lag drawn
   uniformly from ``[0, repin_ttl_s]`` off the dedicated ``"fault-repin"``
   stream (a DNS cache expiring somewhere inside one TTL).  At re-pin time
   the client is reassigned among the shards alive *then*; if none are, it
   waits for the next heal.

A **heal** marks the shard alive again (router mask, pooled rotation, access
link) and re-pins any clients whose lag expired while the whole fleet was
dark.  Clients that already failed over elsewhere do not migrate back —
their cached resolution is fine — matching §4.3's sticky-pinning model.

The three **gray failures** never touch the dispatch masks — the point is
that the fleet keeps routing to a misbehaving shard until the health prober
(if configured) notices:

* ``degrade``/``restore`` — scale the shard's access-link capacity through
  :meth:`~repro.simnet.link.Link.set_capacity_factor` (both directions,
  through the live network so every crossing flow is re-allocated) while
  ``is_up`` stays true;
* ``lossy``/``lossless`` — set the shard's upload-loss probability; each
  completed request upload is then dropped with that probability, drawn
  from the dedicated ``"fault-loss"`` stream (created only when the plan
  has lossy events, preserving the empty-plan bit-identity contract);
* ``stall``/``resume`` — gate the shard's thinner admission
  (:meth:`~repro.core.thinner.ThinnerBase.set_stalled`): it keeps receiving
  requests and sinking payment bytes but stops granting admission.

The injector also samples cumulative good-client service (and, for the
retry-amplification analysis, good-client sends/retries/suppressions) on a
fixed cadence while armed; :class:`~repro.metrics.collector.FailoverMetrics`
exposes the series so experiments can plot service through the pulse.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.errors import FaultError
from repro.faults.spec import FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.frontend import Deployment

#: Drop reason recorded on every request a shard kill orphans.
KILL_REASON = "shard-killed"


class FaultInjector:
    """Drives a fault plan off the deployment's engine clock."""

    def __init__(self, deployment: "Deployment", plan: FaultPlan) -> None:
        shards = deployment.config.thinner_shards
        if shards < 2:
            raise FaultError(
                "fault injection needs a sharded fleet (thinner_shards > 1); "
                "a single-thinner deployment has nothing to fail over to"
            )
        plan.validate(shards)
        self.deployment = deployment
        self.plan = plan
        self.engine = deployment.engine
        self.alive: List[bool] = [True] * shards
        #: Per-client re-pin lags come from their own named stream so arming
        #: the injector never perturbs any existing consumer's draws.
        self._repin_rng = deployment.streams.stream("fault-repin")
        #: Clients whose re-pin lag expired while no shard was alive.
        self._stranded: List = []

        # -- gray-failure state --------------------------------------------
        #: Current capacity factor per shard (1.0 = undegraded).
        self.capacity_factor: List[float] = [1.0] * shards
        #: Current upload-loss probability per shard (0.0 = lossless).
        self.loss_p: List[float] = [0.0] * shards
        #: Admission-stall flag per shard.
        self.stalled: List[bool] = [False] * shards
        #: The loss stream exists only when the plan can need it, so plans
        #: without lossy events stay draw-identical to pre-gray main.
        self._loss_rng = (
            deployment.streams.stream("fault-loss")
            if any(event.action == "lossy" for event in plan.events)
            else None
        )

        # -- the FailoverMetrics surface ------------------------------------
        self.kills = 0
        self.heals = 0
        self.repinned_clients = 0
        self.orphaned_requests = 0
        #: Gray-failure transition counters (start events that took effect).
        self.degrades = 0
        self.stalls = 0
        #: Uploads the ``lossy`` fault actually dropped.
        self.lossy_uploads = 0
        #: Executed fault timeline: ``(time, action, shard)``.
        self.timeline: List[Tuple[float, str, int]] = []
        #: Cumulative good-client served samples: ``(time, served)``.
        self.service_samples: List[Tuple[float, int]] = []
        #: Cumulative good-client retry samples:
        #: ``(time, sent, retries_attempted, retries_suppressed)``.
        self.retry_samples: List[Tuple[float, int, int, int]] = []

    def arm(self) -> None:
        """Schedule the plan's events (called once, at deployment build)."""
        for event in self.plan.ordered_events():
            self.engine.schedule_at(event.at_s, self._execute, event)
        self._sample()
        self.engine.schedule_every(self.plan.sample_interval_s, self._sample)

    # -- event execution -----------------------------------------------------

    def _execute(self, event: FaultEvent) -> None:
        action = event.action
        if action == "kill":
            self._kill(event.shard)
        elif action == "heal":
            self._heal(event.shard)
        elif action == "degrade":
            self._degrade(event.shard, event.factor)
        elif action == "restore":
            self._restore(event.shard)
        elif action == "lossy":
            self._lossy(event.shard, event.loss_p)
        elif action == "lossless":
            self._lossless(event.shard)
        elif action == "stall":
            self._stall(event.shard)
        elif action == "resume":
            self._resume(event.shard)

    def _kill(self, shard: int) -> None:
        if not self.alive[shard]:
            return  # already dead: a no-op, so random schedules compose
        self.alive[shard] = False
        self.kills += 1
        self.timeline.append((self.engine.now, "kill", shard))

        deployment = self.deployment
        deployment._router.set_alive(shard, False)
        if deployment._pool is not None:
            deployment._pool.set_alive(shard, False)

        # Evict the thinner's contenders: channels close (stopping their
        # payment flows), owners drop, clients are notified after one
        # propagation delay — ordinary drop book-keeping.
        thinner = deployment.thinners[shard]
        for contender in thinner.contenders():
            thinner._drop(contender.request, KILL_REASON)
            self.orphaned_requests += 1

        # Reclaim the server slot the shard holds, if any.  Aborting fires
        # the slot's on_ready: the dead thinner idles (its contenders are
        # gone), and a pooled slot is re-offered to the surviving shards.
        self._reclaim_slot(shard, thinner)

        # Clients pinned here abort their in-flight uploads, stop issuing,
        # and schedule a DNS-TTL-style re-pin to whatever is alive then.
        host = deployment.thinner_hosts[shard]
        for client in deployment.clients_of_shard(shard):
            self.orphaned_requests += client.shard_failed()
            lag = self._repin_rng.uniform(0.0, self.plan.repin_ttl_s)
            self.engine.schedule_after(lag, self._repin, client)

        # Take the access link down and sweep any residual flows (the drops
        # above already stopped everything a well-formed run sends here).
        network = deployment.network
        for link in (host.access.up, host.access.down):
            link.is_up = False
            for flow in network.flows_on(link):
                network.stop_flow(flow)

    def _heal(self, shard: int) -> None:
        if self.alive[shard]:
            return  # healing a live shard is a no-op
        self.alive[shard] = True
        self.heals += 1
        self.timeline.append((self.engine.now, "heal", shard))

        deployment = self.deployment
        deployment._router.set_alive(shard, True)
        if deployment._pool is not None:
            deployment._pool.set_alive(shard, True)
        host = deployment.thinner_hosts[shard]
        host.access.up.is_up = True
        host.access.down.is_up = True

        # Clients whose lag expired during a fleet-wide blackout re-resolve
        # as soon as anything is alive again.
        stranded, self._stranded = self._stranded, []
        for client in stranded:
            self._repin_now(client)

    # -- gray failures ---------------------------------------------------------

    def _degrade(self, shard: int, factor: float) -> None:
        if self.capacity_factor[shard] == factor:
            return  # re-degrading at the same factor is a no-op
        self.capacity_factor[shard] = factor
        self.degrades += 1
        self.timeline.append((self.engine.now, "degrade", shard))
        self._apply_capacity_factor(shard, factor)

    def _restore(self, shard: int) -> None:
        if self.capacity_factor[shard] == 1.0:
            return  # restoring an undegraded shard is a no-op
        self.capacity_factor[shard] = 1.0
        self.timeline.append((self.engine.now, "restore", shard))
        self._apply_capacity_factor(shard, 1.0)

    def _apply_capacity_factor(self, shard: int, factor: float) -> None:
        deployment = self.deployment
        host = deployment.thinner_hosts[shard]
        network = deployment.network
        for link in (host.access.up, host.access.down):
            link.set_capacity_factor(factor, network=network)

    def _lossy(self, shard: int, loss_p: float) -> None:
        if self.loss_p[shard] == loss_p:
            return
        self.loss_p[shard] = loss_p
        self.timeline.append((self.engine.now, "lossy", shard))

    def _lossless(self, shard: int) -> None:
        if self.loss_p[shard] == 0.0:
            return
        self.loss_p[shard] = 0.0
        self.timeline.append((self.engine.now, "lossless", shard))

    def _stall(self, shard: int) -> None:
        if self.stalled[shard]:
            return
        self.stalled[shard] = True
        self.stalls += 1
        self.timeline.append((self.engine.now, "stall", shard))
        self.deployment.thinners[shard].set_stalled(True)

    def _resume(self, shard: int) -> None:
        if not self.stalled[shard]:
            return
        self.stalled[shard] = False
        self.timeline.append((self.engine.now, "resume", shard))
        self.deployment.thinners[shard].set_stalled(False)

    def upload_lost(self, shard: int) -> bool:
        """Bernoulli drop decision for one completed upload toward ``shard``.

        Returns False without consuming a draw while the shard is lossless,
        so runs whose plans never turn loss on stay draw-identical.
        """
        p = self.loss_p[shard]
        if p <= 0.0:
            return False
        if self._loss_rng.bernoulli(p):
            self.lossy_uploads += 1
            return True
        return False

    # -- re-pinning ------------------------------------------------------------

    def _repin(self, client) -> None:
        if not client._shard_down:  # pragma: no cover - defensive
            return
        if not any(self.alive):
            self._stranded.append(client)
            return
        self._repin_now(client)

    def _repin_now(self, client) -> None:
        new_shard = self.deployment._router.reassign(client.name, client.shard)
        client.repin(new_shard)
        self.repinned_clients += 1

    # -- service sampling ------------------------------------------------------

    def _good_served(self) -> int:
        return sum(
            client.stats.served
            for client in self.deployment.clients
            if client.client_class == "good"
        )

    def _sample(self) -> None:
        served = sent = retried = suppressed = 0
        for client in self.deployment.clients:
            if client.client_class != "good":
                continue
            stats = client.stats
            served += stats.served
            sent += stats.sent
            retried += stats.retries_attempted
            suppressed += stats.retries_suppressed
        now = self.engine.now
        self.service_samples.append((now, served))
        self.retry_samples.append((now, sent, retried, suppressed))

    # -- internals -------------------------------------------------------------

    def _reclaim_slot(self, shard: int, thinner) -> None:
        deployment = self.deployment
        if deployment._pool is not None:
            request = deployment._pool.reclaim(shard)
            server = deployment.server
        else:
            server = deployment.servers[shard]
            request = server.current
        if request is None:
            return
        owner = thinner._pop_owner(request.request_id)
        server.abort(request)
        request.drop_reason = KILL_REASON
        self.orphaned_requests += 1
        if owner is not None:
            shard_host = deployment.thinner_hosts[shard]
            delay = deployment.network.topology.one_way_delay(shard_host, owner.host)
            self.engine.schedule_after(delay, owner.on_dropped, request, KILL_REASON)
