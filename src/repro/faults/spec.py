"""Fault plans: scheduled shard kill/heal/gray-failure events, as frozen data.

A :class:`FaultPlan` is to failover what a
:class:`~repro.scenarios.spec.ScenarioSpec` is to a run: a frozen,
JSON-round-trippable description that can be stored in sweep records,
compared across runs, and swept over.  The plan itself does nothing — a
:class:`~repro.faults.injector.FaultInjector` executes it against a live
deployment off the simulation engine clock.

Beyond the fail-stop pair (``kill``/``heal``), three gray-failure pairs
model shards that misbehave while still answering health checks:

* ``degrade``/``restore`` — scale the shard's access-link capacity by
  ``factor`` while ``Link.is_up`` stays true (a browned-out front-end);
* ``lossy``/``lossless`` — drop each completed upload at the thinner with
  probability ``loss_p``, drawn from the dedicated ``"fault-loss"`` stream;
* ``stall``/``resume`` — the shard stops granting admission but keeps
  accepting payment bytes (the classic gray failure).

The compatibility contract, enforced by the empty-plan pin tests: a
deployment configured with ``FaultPlan()`` (no events) builds no injector,
creates no random streams, schedules no events, and is therefore
byte-identical to a deployment with no fault plan at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FaultError

#: Everything that can happen to a shard mid-run: the fail-stop pair plus
#: the three gray-failure start/stop pairs.
FAULT_ACTIONS = (
    "kill",
    "heal",
    "degrade",
    "restore",
    "lossy",
    "lossless",
    "stall",
    "resume",
)

#: Stop actions and the start action each one undoes (used by the optional
#: strict horizon validation: a stop for a shard that never started is
#: almost always a typo in a hand-written plan).
STOP_ACTIONS = {
    "heal": "kill",
    "restore": "degrade",
    "lossless": "lossy",
    "resume": "stall",
}

#: Default DNS-TTL analogue: a failed-over client re-pins after a lag drawn
#: uniformly from ``[0, repin_ttl_s]`` — its cached resolution is uniformly
#: aged when the front-end dies, so expiries spread over one TTL.
DEFAULT_REPIN_TTL = 2.0

#: Default cadence of the injector's good-client service samples, which the
#: failover experiment turns into a service-through-the-pulse time series.
DEFAULT_SAMPLE_INTERVAL = 0.25


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled shard fault.

    ``factor`` is required by (and only valid for) ``degrade``: the shard's
    access-link capacity becomes ``factor * base`` in both directions.
    ``loss_p`` is required by (and only valid for) ``lossy``: each upload
    that completes toward the shard is dropped with this probability.
    """

    at_s: float
    action: str
    shard: int
    factor: Optional[float] = None
    loss_p: Optional[float] = None

    def validate(self, shards: Optional[int] = None) -> None:
        if self.at_s < 0:
            raise FaultError(f"fault event time must be non-negative, got {self.at_s}")
        if self.action not in FAULT_ACTIONS:
            raise FaultError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.shard < 0:
            raise FaultError(f"fault event shard must be non-negative, got {self.shard}")
        if shards is not None and self.shard >= shards:
            raise FaultError(
                f"fault event targets shard {self.shard} but the fleet has "
                f"only {shards} shard(s)"
            )
        if self.action == "degrade":
            if self.factor is None or not 0.0 < self.factor <= 1.0:
                raise FaultError(
                    f"degrade needs a capacity factor in (0, 1], got {self.factor}"
                )
        elif self.factor is not None:
            raise FaultError(f"{self.action!r} events take no capacity factor")
        if self.action == "lossy":
            if self.loss_p is None or not 0.0 <= self.loss_p <= 1.0:
                raise FaultError(
                    f"lossy needs a drop probability in [0, 1], got {self.loss_p}"
                )
        elif self.loss_p is not None:
            raise FaultError(f"{self.action!r} events take no drop probability")

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "at_s": self.at_s,
            "action": self.action,
            "shard": self.shard,
        }
        if self.factor is not None:
            payload["factor"] = self.factor
        if self.loss_p is not None:
            payload["loss_p"] = self.loss_p
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        factor = data.get("factor")
        loss_p = data.get("loss_p")
        return cls(
            at_s=float(data["at_s"]),
            action=str(data["action"]),
            shard=int(data["shard"]),
            factor=None if factor is None else float(factor),
            loss_p=None if loss_p is None else float(loss_p),
        )

    def describe(self) -> str:
        """A compact one-line rendering for validation error messages."""
        extra = ""
        if self.factor is not None:
            extra = f" factor={self.factor:g}"
        if self.loss_p is not None:
            extra = f" loss_p={self.loss_p:g}"
        return f"{self.action}@{self.at_s:g}s shard={self.shard}{extra}"


@dataclass(frozen=True)
class FaultPlan:
    """A schedule of shard fault events plus the re-pin lag model.

    ``events`` may arrive in any order; the injector executes them in
    ``(at_s, declaration order)`` order.  Stop actions with nothing to stop
    (healing a live shard, restoring an undegraded one, ...) are no-ops, so
    randomly generated schedules (the property tests') need no cross-event
    consistency.  Pass ``horizon_s`` to :meth:`validate` for the strict
    check hand-written plans want: events past the run horizon and orphan
    stop events become errors listing every offender.
    """

    events: Tuple[FaultEvent, ...] = ()
    #: Re-pin lag TTL: each affected client re-resolves to a surviving shard
    #: after a per-client lag drawn uniformly from ``[0, repin_ttl_s]`` (the
    #: dedicated ``"fault-repin"`` stream of the deployment seed).
    repin_ttl_s: float = DEFAULT_REPIN_TTL
    #: Cadence of the injector's cumulative good-client service samples.
    sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL

    def __post_init__(self) -> None:
        # Tolerate lists for ergonomic construction; freeze to a tuple.
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules nothing (the byte-identical no-op)."""
        return not self.events

    def validate(
        self, shards: Optional[int] = None, horizon_s: Optional[float] = None
    ) -> None:
        """Raise :class:`~repro.errors.FaultError` on a nonsensical plan.

        With ``horizon_s`` the check turns strict: events scheduled beyond
        the horizon and stop events for shards that never started (a heal
        for a never-killed shard, ...) raise one error listing them all.
        """
        if self.repin_ttl_s < 0:
            raise FaultError(f"repin_ttl_s must be non-negative, got {self.repin_ttl_s}")
        if self.sample_interval_s <= 0:
            raise FaultError(
                f"sample_interval_s must be positive, got {self.sample_interval_s}"
            )
        for event in self.events:
            event.validate(shards)
        if horizon_s is not None:
            self._validate_strict(horizon_s)

    def _validate_strict(self, horizon_s: float) -> None:
        problems: List[str] = []
        for event in self.events:
            if event.at_s > horizon_s:
                problems.append(
                    f"{event.describe()} is beyond the {horizon_s:g}s run horizon"
                )
        started: Dict[str, set] = {start: set() for start in STOP_ACTIONS.values()}
        for event in self.ordered_events():
            if event.at_s > horizon_s:
                continue
            if event.action in started:
                started[event.action].add(event.shard)
            elif event.action in STOP_ACTIONS:
                start = STOP_ACTIONS[event.action]
                if event.shard not in started[start]:
                    problems.append(
                        f"{event.describe()} stops a shard no earlier "
                        f"{start!r} event started"
                    )
                else:
                    started[start].discard(event.shard)
        if problems:
            raise FaultError(
                f"invalid fault plan ({len(problems)} problem(s)): "
                + "; ".join(problems)
            )

    def ordered_events(self) -> Tuple[FaultEvent, ...]:
        """Events in execution order: by time, declaration order on ties."""
        return tuple(sorted(self.events, key=lambda event: event.at_s))

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [event.to_dict() for event in self.events],
            "repin_ttl_s": self.repin_ttl_s,
            "sample_interval_s": self.sample_interval_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            events=tuple(FaultEvent.from_dict(entry) for entry in data.get("events", [])),
            repin_ttl_s=float(data.get("repin_ttl_s", DEFAULT_REPIN_TTL)),
            sample_interval_s=float(
                data.get("sample_interval_s", DEFAULT_SAMPLE_INTERVAL)
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        return cls.from_dict(json.loads(payload))


def kill_heal_pulse(
    shard: int,
    kill_at_s: float,
    heal_at_s: float,
    repin_ttl_s: float = DEFAULT_REPIN_TTL,
    sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL,
) -> FaultPlan:
    """The canonical single-shard outage: kill at ``kill_at_s``, heal later."""
    if heal_at_s <= kill_at_s:
        raise FaultError(
            f"heal_at_s ({heal_at_s}) must come after kill_at_s ({kill_at_s})"
        )
    return FaultPlan(
        events=(
            FaultEvent(at_s=kill_at_s, action="kill", shard=shard),
            FaultEvent(at_s=heal_at_s, action="heal", shard=shard),
        ),
        repin_ttl_s=repin_ttl_s,
        sample_interval_s=sample_interval_s,
    )


def gray_pulse(
    shards: Tuple[int, ...],
    start_at_s: float,
    end_at_s: float,
    factor: Optional[float] = None,
    loss_p: Optional[float] = None,
    stall: bool = False,
    repin_ttl_s: float = DEFAULT_REPIN_TTL,
    sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL,
) -> FaultPlan:
    """One gray-failure pulse over ``shards``: start every selected axis at
    ``start_at_s`` and stop it at ``end_at_s``.

    Pass ``factor`` for a capacity degrade, ``loss_p`` for upload loss,
    ``stall=True`` for an admission stall; axes compose on the same pulse.
    """
    if end_at_s <= start_at_s:
        raise FaultError(
            f"end_at_s ({end_at_s}) must come after start_at_s ({start_at_s})"
        )
    if factor is None and loss_p is None and not stall:
        raise FaultError("gray_pulse needs at least one of factor, loss_p, stall")
    events: List[FaultEvent] = []
    for shard in shards:
        if factor is not None:
            events.append(
                FaultEvent(at_s=start_at_s, action="degrade", shard=shard, factor=factor)
            )
            events.append(FaultEvent(at_s=end_at_s, action="restore", shard=shard))
        if loss_p is not None:
            events.append(
                FaultEvent(at_s=start_at_s, action="lossy", shard=shard, loss_p=loss_p)
            )
            events.append(FaultEvent(at_s=end_at_s, action="lossless", shard=shard))
        if stall:
            events.append(FaultEvent(at_s=start_at_s, action="stall", shard=shard))
            events.append(FaultEvent(at_s=end_at_s, action="resume", shard=shard))
    return FaultPlan(
        events=tuple(events),
        repin_ttl_s=repin_ttl_s,
        sample_interval_s=sample_interval_s,
    )
