"""Fault plans: scheduled shard kill/heal events, as frozen data.

A :class:`FaultPlan` is to failover what a
:class:`~repro.scenarios.spec.ScenarioSpec` is to a run: a frozen,
JSON-round-trippable description that can be stored in sweep records,
compared across runs, and swept over.  The plan itself does nothing — a
:class:`~repro.faults.injector.FaultInjector` executes it against a live
deployment off the simulation engine clock.

The compatibility contract, enforced by the empty-plan pin tests: a
deployment configured with ``FaultPlan()`` (no events) builds no injector,
creates no random streams, schedules no events, and is therefore
byte-identical to a deployment with no fault plan at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import FaultError

#: The two things that can happen to a shard mid-run.
FAULT_ACTIONS = ("kill", "heal")

#: Default DNS-TTL analogue: a failed-over client re-pins after a lag drawn
#: uniformly from ``[0, repin_ttl_s]`` — its cached resolution is uniformly
#: aged when the front-end dies, so expiries spread over one TTL.
DEFAULT_REPIN_TTL = 2.0

#: Default cadence of the injector's good-client service samples, which the
#: failover experiment turns into a service-through-the-pulse time series.
DEFAULT_SAMPLE_INTERVAL = 0.25


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled shard fault: ``kill`` or ``heal`` shard ``shard`` at ``at_s``."""

    at_s: float
    action: str
    shard: int

    def validate(self, shards: Optional[int] = None) -> None:
        if self.at_s < 0:
            raise FaultError(f"fault event time must be non-negative, got {self.at_s}")
        if self.action not in FAULT_ACTIONS:
            raise FaultError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.shard < 0:
            raise FaultError(f"fault event shard must be non-negative, got {self.shard}")
        if shards is not None and self.shard >= shards:
            raise FaultError(
                f"fault event targets shard {self.shard} but the fleet has "
                f"only {shards} shard(s)"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"at_s": self.at_s, "action": self.action, "shard": self.shard}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(
            at_s=float(data["at_s"]), action=str(data["action"]), shard=int(data["shard"])
        )


@dataclass(frozen=True)
class FaultPlan:
    """A schedule of shard kill/heal events plus the re-pin lag model.

    ``events`` may arrive in any order; the injector executes them in
    ``(at_s, declaration order)`` order.  Killing an already-dead shard or
    healing a live one is a no-op, so randomly generated schedules (the
    property tests') need no cross-event consistency.
    """

    events: Tuple[FaultEvent, ...] = ()
    #: Re-pin lag TTL: each affected client re-resolves to a surviving shard
    #: after a per-client lag drawn uniformly from ``[0, repin_ttl_s]`` (the
    #: dedicated ``"fault-repin"`` stream of the deployment seed).
    repin_ttl_s: float = DEFAULT_REPIN_TTL
    #: Cadence of the injector's cumulative good-client service samples.
    sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL

    def __post_init__(self) -> None:
        # Tolerate lists for ergonomic construction; freeze to a tuple.
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules nothing (the byte-identical no-op)."""
        return not self.events

    def validate(self, shards: Optional[int] = None) -> None:
        """Raise :class:`~repro.errors.FaultError` on a nonsensical plan."""
        if self.repin_ttl_s < 0:
            raise FaultError(f"repin_ttl_s must be non-negative, got {self.repin_ttl_s}")
        if self.sample_interval_s <= 0:
            raise FaultError(
                f"sample_interval_s must be positive, got {self.sample_interval_s}"
            )
        for event in self.events:
            event.validate(shards)

    def ordered_events(self) -> Tuple[FaultEvent, ...]:
        """Events in execution order: by time, declaration order on ties."""
        return tuple(sorted(self.events, key=lambda event: event.at_s))

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [event.to_dict() for event in self.events],
            "repin_ttl_s": self.repin_ttl_s,
            "sample_interval_s": self.sample_interval_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            events=tuple(FaultEvent.from_dict(entry) for entry in data.get("events", [])),
            repin_ttl_s=float(data.get("repin_ttl_s", DEFAULT_REPIN_TTL)),
            sample_interval_s=float(
                data.get("sample_interval_s", DEFAULT_SAMPLE_INTERVAL)
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        return cls.from_dict(json.loads(payload))


def kill_heal_pulse(
    shard: int,
    kill_at_s: float,
    heal_at_s: float,
    repin_ttl_s: float = DEFAULT_REPIN_TTL,
    sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL,
) -> FaultPlan:
    """The canonical single-shard outage: kill at ``kill_at_s``, heal later."""
    if heal_at_s <= kill_at_s:
        raise FaultError(
            f"heal_at_s ({heal_at_s}) must come after kill_at_s ({kill_at_s})"
        )
    return FaultPlan(
        events=(
            FaultEvent(at_s=kill_at_s, action="kill", shard=shard),
            FaultEvent(at_s=heal_at_s, action="heal", shard=shard),
        ),
        repin_ttl_s=repin_ttl_s,
        sample_interval_s=sample_interval_s,
    )
