"""Deterministic fault injection for sharded thinner fleets (§4.3 failover)."""

from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultEvent, FaultPlan

__all__ = ["FaultEvent", "FaultInjector", "FaultPlan"]
