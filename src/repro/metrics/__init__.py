"""Metrics: per-run collection, statistical summaries, and text tables."""

from repro.metrics.collector import ClassMetrics, RunResult, ShardMetrics, collect
from repro.metrics.summary import (
    confidence_interval,
    mean,
    percentile,
    stddev,
    summarise,
)
from repro.metrics.tables import format_row, format_table

__all__ = [
    "ClassMetrics",
    "RunResult",
    "ShardMetrics",
    "collect",
    "mean",
    "percentile",
    "stddev",
    "confidence_interval",
    "summarise",
    "format_table",
    "format_row",
]
