"""Small statistics helpers used by the metrics collector and experiments.

Kept dependency-free (no numpy) so the core library stays importable
anywhere; the benchmark harness is free to use numpy on top of these.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((value - mu) ** 2 for value in values) / (len(values) - 1))


def percentile(
    values: Sequence[float],
    fraction: float,
    empty: Optional[float] = 0.0,
) -> Optional[float]:
    """Nearest-rank percentile (``fraction`` in [0, 1]).

    Empty-input policy: an empty sample set returns ``empty``, which
    defaults to ``0.0`` (the historical contract, kept so serialised
    summaries stay byte-compatible).  Callers that need to distinguish
    "no samples" from "all samples were zero" — the rollup telemetry
    sketches feeding p99.9 at scale do — pass ``empty=None`` and get
    ``None`` back.  Non-empty input always returns an element of
    ``values``, including for extreme fractions such as 0.999 (p99.9):
    nearest-rank needs >= 1000 samples before p99.9 can differ from the
    maximum.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not values:
        return empty
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def confidence_interval(values: Sequence[float], z: float = 1.96) -> float:
    """Half-width of the normal-approximation confidence interval of the mean."""
    if len(values) < 2:
        return 0.0
    return z * stddev(values) / math.sqrt(len(values))


@dataclass(frozen=True)
class Summary:
    """Mean / deviation / percentiles of one sample set.

    ``p999`` (p99.9) is optional: ``None`` on summaries built by the
    historical full-mode collector, populated by the rollup telemetry
    path (and by ``summarise(..., extended=True)``).  ``as_dict`` emits
    the key only when set, so stored results from older runs stay
    byte-compatible.
    """

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    p999: Optional[float] = None

    def as_dict(self) -> dict:
        data = {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }
        if self.p999 is not None:
            data["p999"] = self.p999
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Summary":
        """Rebuild a summary serialised by :meth:`as_dict`."""
        p999 = data.get("p999")
        return cls(
            count=int(data.get("count", 0)),
            mean=float(data.get("mean", 0.0)),
            stddev=float(data.get("stddev", 0.0)),
            minimum=float(data.get("min", 0.0)),
            maximum=float(data.get("max", 0.0)),
            p50=float(data.get("p50", 0.0)),
            p90=float(data.get("p90", 0.0)),
            p99=float(data.get("p99", 0.0)),
            p999=None if p999 is None else float(p999),
        )


def summarise(values: Sequence[float], extended: bool = False) -> Summary:
    """Full summary of a sample set (empty sets produce all-zero summaries).

    ``extended=True`` also fills the tail percentile ``p999``; the
    default leaves it ``None`` so existing serialised output is
    unchanged.
    """
    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, p999=0.0 if extended else None)
    return Summary(
        count=len(values),
        mean=mean(values),
        stddev=stddev(values),
        minimum=min(values),
        maximum=max(values),
        p50=percentile(values, 0.50),
        p90=percentile(values, 0.90),
        p99=percentile(values, 0.99),
        p999=percentile(values, 0.999) if extended else None,
    )


def ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """A safe division used all over the allocation metrics."""
    if denominator == 0:
        return default
    return numerator / denominator
