"""Plain-text table rendering for benchmark and CLI output.

The benchmark harness prints the same rows and series the paper's figures
show; these helpers keep that output aligned and readable without pulling in
any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, float, int, None]


def _format_cell(value: Cell, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_row(cells: Sequence[Cell], widths: Sequence[int], precision: int = 3) -> str:
    """Format one row with the given column widths."""
    parts = []
    for cell, width in zip(cells, widths):
        parts.append(_format_cell(cell, precision).rjust(width))
    return "  ".join(parts)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Render a full table (title, header, separator, rows) as one string."""
    materialised: List[Sequence[Cell]] = [list(row) for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(_format_cell(cell, precision)))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.rjust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append(format_row(row, widths, precision))
    return "\n".join(lines)


def format_comparison(
    label: str, paper_value: float, measured_value: float, unit: str = ""
) -> str:
    """One "paper=X measured=Y" comparison line for experiment reports."""
    suffix = f" {unit}" if unit else ""
    return (
        f"{label}: paper={paper_value:.3f}{suffix} "
        f"measured={measured_value:.3f}{suffix}"
    )
