"""Turn a finished :class:`~repro.core.frontend.Deployment` run into numbers.

The quantities mirror what the paper's figures report:

* *server allocation* to a class or category — the fraction of served
  requests (and, separately, of server busy time) that went to it
  (Figures 2, 3, 6, 7, 8);
* *fraction of good requests served* (Figures 3 and 8);
* *payment time* of served good requests (Figure 4);
* *average price* per served request by class, against the (G+B)/c upper
  bound (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.summary import Summary, mean, ratio, summarise


@dataclass
class ClassMetrics:
    """Aggregates over all clients of one class ("good" or "bad")."""

    client_class: str
    clients: int = 0
    aggregate_bandwidth_bps: float = 0.0
    issued: int = 0
    served: int = 0
    denied: int = 0
    dropped: int = 0
    bytes_paid: float = 0.0
    payment_time: Summary = field(default_factory=lambda: summarise([]))
    response_time: Summary = field(default_factory=lambda: summarise([]))
    mean_price_bytes: float = 0.0

    @property
    def finished(self) -> int:
        return self.served + self.denied + self.dropped

    @property
    def served_fraction(self) -> float:
        """Fraction of requests with an outcome that were served."""
        return ratio(self.served, self.finished)

    @property
    def demand_served_fraction(self) -> float:
        """Fraction of *all issued* requests that were served (stricter)."""
        return ratio(self.served, self.issued)


@dataclass
class RunResult:
    """Everything the experiments and benchmarks need from one run."""

    duration: float
    defense: str
    server_capacity_rps: float
    good: ClassMetrics
    bad: ClassMetrics
    total_served: int = 0
    server_busy_time: float = 0.0
    allocation_by_class: Dict[str, float] = field(default_factory=dict)
    busy_allocation_by_class: Dict[str, float] = field(default_factory=dict)
    allocation_by_category: Dict[str, float] = field(default_factory=dict)
    served_by_category: Dict[str, int] = field(default_factory=dict)
    served_fraction_by_category: Dict[str, float] = field(default_factory=dict)
    mean_price_by_class: Dict[str, float] = field(default_factory=dict)
    price_upper_bound_bytes: float = 0.0
    auctions_held: int = 0
    free_admissions: int = 0
    payment_bytes_sunk: float = 0.0
    good_bandwidth_bps: float = 0.0
    bad_bandwidth_bps: float = 0.0

    # -- the headline numbers ----------------------------------------------------

    @property
    def good_allocation(self) -> float:
        """Fraction of the server allocated to good clients (Figures 2/3)."""
        return self.allocation_by_class.get("good", 0.0)

    @property
    def bad_allocation(self) -> float:
        """Fraction of the server allocated to bad clients."""
        return self.allocation_by_class.get("bad", 0.0)

    @property
    def good_fraction_served(self) -> float:
        """Fraction of good requests that were served (Figure 3's third bar)."""
        return self.good.served_fraction

    @property
    def ideal_good_allocation(self) -> float:
        """The bandwidth-proportional ideal G/(G+B)."""
        return ratio(self.good_bandwidth_bps, self.good_bandwidth_bps + self.bad_bandwidth_bps)

    @property
    def server_utilisation(self) -> float:
        return ratio(self.server_busy_time, self.duration)

    def as_dict(self) -> dict:
        """Flat dictionary, convenient for printing and JSON dumps."""
        return {
            "duration": self.duration,
            "defense": self.defense,
            "capacity_rps": self.server_capacity_rps,
            "good_allocation": self.good_allocation,
            "bad_allocation": self.bad_allocation,
            "ideal_good_allocation": self.ideal_good_allocation,
            "good_fraction_served": self.good_fraction_served,
            "good_served": self.good.served,
            "bad_served": self.bad.served,
            "good_denied": self.good.denied,
            "mean_payment_time_good": self.good.payment_time.mean,
            "p90_payment_time_good": self.good.payment_time.p90,
            "mean_price_good": self.mean_price_by_class.get("good", 0.0),
            "mean_price_bad": self.mean_price_by_class.get("bad", 0.0),
            "price_upper_bound": self.price_upper_bound_bytes,
            "auctions_held": self.auctions_held,
            "server_utilisation": self.server_utilisation,
        }


def _collect_class(deployment, client_class: str) -> ClassMetrics:
    clients = deployment.clients_of_class(client_class)
    metrics = ClassMetrics(client_class=client_class, clients=len(clients))
    payment_times: List[float] = []
    response_times: List[float] = []
    prices: List[float] = []
    for client in clients:
        stats = client.stats
        metrics.aggregate_bandwidth_bps += client.upload_bandwidth_bps
        metrics.issued += stats.issued
        metrics.served += stats.served
        metrics.denied += stats.denied
        metrics.dropped += stats.dropped
        metrics.bytes_paid += client.total_bytes_spent()
        payment_times.extend(stats.payment_times)
        response_times.extend(stats.response_times)
        prices.extend(stats.prices)
    metrics.payment_time = summarise(payment_times)
    metrics.response_time = summarise(response_times)
    metrics.mean_price_bytes = mean(prices)
    return metrics


def collect(deployment) -> RunResult:
    """Build a :class:`RunResult` from a deployment that has finished running."""
    good = _collect_class(deployment, "good")
    bad = _collect_class(deployment, "bad")
    server_stats = deployment.server.stats
    thinner = deployment.thinner

    good_bw = deployment.aggregate_bandwidth_bps("good")
    bad_bw = deployment.aggregate_bandwidth_bps("bad")
    capacity = deployment.config.server_capacity_rps
    upper_bound = ratio(good_bw + bad_bw, 8.0 * capacity)  # bytes per request

    served_by_category = dict(server_stats.served_by_category)
    allocation_by_category = server_stats.allocation_by_category()

    served_fraction_by_category: Dict[str, float] = {}
    issued_by_category: Dict[str, int] = {}
    finished_by_category: Dict[str, int] = {}
    for client in deployment.clients:
        if client.category is None:
            continue
        issued_by_category[client.category] = (
            issued_by_category.get(client.category, 0) + client.stats.issued
        )
        finished_by_category[client.category] = (
            finished_by_category.get(client.category, 0)
            + client.stats.served
            + client.stats.denied
            + client.stats.dropped
        )
    for category, finished in finished_by_category.items():
        served = 0
        for client in deployment.clients:
            if client.category == category:
                served += client.stats.served
        served_fraction_by_category[category] = ratio(served, finished)

    return RunResult(
        duration=deployment.duration,
        defense=deployment.config.defense,
        server_capacity_rps=capacity,
        good=good,
        bad=bad,
        total_served=server_stats.served,
        server_busy_time=server_stats.busy_time,
        allocation_by_class=server_stats.allocation_by_class(),
        busy_allocation_by_class={
            cls: ratio(busy, server_stats.busy_time)
            for cls, busy in server_stats.busy_time_by_class.items()
        },
        allocation_by_category=allocation_by_category,
        served_by_category=served_by_category,
        served_fraction_by_category=served_fraction_by_category,
        mean_price_by_class=thinner.prices.average_by_class(),
        price_upper_bound_bytes=upper_bound,
        auctions_held=thinner.stats.auctions_held,
        free_admissions=thinner.stats.free_admissions,
        payment_bytes_sunk=thinner.stats.payment_bytes_sunk,
        good_bandwidth_bps=good_bw,
        bad_bandwidth_bps=bad_bw,
    )
