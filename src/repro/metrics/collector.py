"""Turn a finished :class:`~repro.core.frontend.Deployment` run into numbers.

The quantities mirror what the paper's figures report:

* *server allocation* to a class or category — the fraction of served
  requests (and, separately, of server busy time) that went to it
  (Figures 2, 3, 6, 7, 8);
* *fraction of good requests served* (Figures 3 and 8);
* *payment time* of served good requests (Figure 4);
* *average price* per served request by class, against the (G+B)/c upper
  bound (Figure 5).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.summary import Summary, mean, ratio, summarise
from repro.telemetry.collector import TelemetryMetrics


@dataclass
class StageMetrics:
    """One pipeline screening stage's work (per thinner shard).

    ``screened`` counts every request the stage examined; ``rejected`` the
    ones it dropped before the admission thinner saw them.  Present only
    for pipeline defenses.
    """

    name: str
    screened: int = 0
    rejected: int = 0

    @property
    def passed(self) -> int:
        return self.screened - self.rejected

    def to_dict(self) -> dict:
        return {"name": self.name, "screened": self.screened, "rejected": self.rejected}

    @classmethod
    def from_dict(cls, data: dict) -> "StageMetrics":
        return cls(
            name=data["name"],
            screened=int(data.get("screened", 0)),
            rejected=int(data.get("rejected", 0)),
        )


@dataclass
class EngagementMetrics:
    """When an adaptive defense was engaged over a run (per thinner shard).

    ``transitions`` holds the (time, engaged) switch events in order; the
    run starts disengaged at t=0.  Present only for adaptive defenses.
    """

    duration: float
    transitions: List[List] = field(default_factory=list)

    @classmethod
    def from_log(cls, log, duration: float) -> "EngagementMetrics":
        return cls(
            duration=duration,
            transitions=[[float(time), bool(engaged)] for time, engaged in log],
        )

    @property
    def engagements(self) -> int:
        """How many times the inner defense was switched on."""
        return sum(1 for _time, engaged in self.transitions if engaged)

    @property
    def first_engaged_at(self) -> Optional[float]:
        for time, engaged in self.transitions:
            if engaged:
                return time
        return None

    @property
    def last_disengaged_at(self) -> Optional[float]:
        for time, engaged in reversed(self.transitions):
            if not engaged:
                return time
        return None

    @property
    def engaged_at_end(self) -> bool:
        return bool(self.transitions) and bool(self.transitions[-1][1])

    @property
    def time_engaged(self) -> float:
        """Total simulated seconds the inner defense was on."""
        total, engaged_since = 0.0, None
        for time, engaged in self.transitions:
            if engaged and engaged_since is None:
                engaged_since = time
            elif not engaged and engaged_since is not None:
                total += time - engaged_since
                engaged_since = None
        if engaged_since is not None:
            total += self.duration - engaged_since
        return total

    @property
    def engaged_fraction(self) -> float:
        return ratio(self.time_engaged, self.duration)

    def engaged_at(self, time: float) -> bool:
        """Whether the inner defense was on at simulated ``time``."""
        engaged = False
        for switch_time, switch_engaged in self.transitions:
            if switch_time > time:
                break
            engaged = switch_engaged
        return engaged

    def to_dict(self) -> dict:
        return {
            "duration": self.duration,
            "transitions": [list(entry) for entry in self.transitions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EngagementMetrics":
        return cls(
            duration=float(data.get("duration", 0.0)),
            transitions=[
                [float(time), bool(engaged)]
                for time, engaged in data.get("transitions", [])
            ],
        )


@dataclass
class FailoverMetrics:
    """What a fault plan did to a run (kills, heals, and their fallout).

    Present only when the deployment ran with a non-empty
    :class:`~repro.faults.spec.FaultPlan`; fault-free runs carry no
    failover key at all, keeping their serialised form byte-identical to
    pre-fault-layer results.

    ``timeline`` holds the executed ``[time, action, shard]`` events in
    order (no-op kills of dead shards and heals of live ones are not
    recorded; the health prober's eject/readmit transitions are merged in
    when one ran).  ``service_samples`` is the cumulative good-client served
    count sampled on the plan's cadence, ``[time, served]`` — difference
    neighbouring samples to get a service rate through the pulse.
    ``retry_samples`` is the parallel cumulative retry accounting,
    ``[time, sent, retried, suppressed]`` over the good clients — the
    series retry-amplification numbers are differenced from.

    Every post-fail-stop field (gray-failure transition counters, prober
    counters, retry totals and samples) serialises only when non-zero, so a
    kill/heal-only run's dictionary is byte-identical to earlier releases.
    """

    kills: int = 0
    heals: int = 0
    repinned_clients: int = 0
    orphaned_requests: int = 0
    #: Gray-failure transitions that took effect (degrade/stall starts) and
    #: uploads the lossy fault swallowed.
    degrades: int = 0
    stalls: int = 0
    lossy_uploads: int = 0
    #: Health-prober outcome: ejections, probation readmits, clients moved
    #: off ejected shards, and individual per-shard probe observations.
    ejections: int = 0
    readmits: int = 0
    ejected_repins: int = 0
    probe_samples: int = 0
    #: Client retry totals (attempted and budget-suppressed), fleet-wide.
    retries_attempted: int = 0
    retries_suppressed: int = 0
    timeline: List[List] = field(default_factory=list)
    service_samples: List[List] = field(default_factory=list)
    retry_samples: List[List] = field(default_factory=list)

    @classmethod
    def from_injector(cls, injector, prober=None) -> "FailoverMetrics":
        """Build from the fault injector and/or health prober (either may be None)."""
        metrics = cls()
        if injector is not None:
            metrics.kills = injector.kills
            metrics.heals = injector.heals
            metrics.repinned_clients = injector.repinned_clients
            metrics.orphaned_requests = injector.orphaned_requests
            metrics.degrades = injector.degrades
            metrics.stalls = injector.stalls
            metrics.lossy_uploads = injector.lossy_uploads
            metrics.timeline = [
                [float(time), action, int(shard)]
                for time, action, shard in injector.timeline
            ]
            metrics.service_samples = [
                [float(time), int(served)]
                for time, served in injector.service_samples
            ]
            metrics.retry_samples = [
                [float(time), int(sent), int(retried), int(suppressed)]
                for time, sent, retried, suppressed in injector.retry_samples
            ]
        if prober is not None:
            metrics.ejections = prober.ejections
            metrics.readmits = prober.readmits
            metrics.ejected_repins = prober.repinned_clients
            metrics.probe_samples = prober.probe_samples
            if prober.timeline:
                metrics.timeline = sorted(
                    metrics.timeline
                    + [
                        [float(time), action, int(shard)]
                        for time, action, shard in prober.timeline
                    ],
                    key=lambda entry: entry[0],
                )
        return metrics

    def to_dict(self) -> dict:
        payload = {
            "kills": self.kills,
            "heals": self.heals,
            "repinned_clients": self.repinned_clients,
            "orphaned_requests": self.orphaned_requests,
            "timeline": [list(entry) for entry in self.timeline],
            "service_samples": [list(entry) for entry in self.service_samples],
        }
        # Only-when-nonzero: a kill/heal-only plan serialises exactly as it
        # did before the gray-failure, retry and prober extensions existed.
        for key in (
            "degrades",
            "stalls",
            "lossy_uploads",
            "ejections",
            "readmits",
            "ejected_repins",
            "probe_samples",
            "retries_attempted",
            "retries_suppressed",
        ):
            value = getattr(self, key)
            if value:
                payload[key] = value
        if self.retry_samples:
            payload["retry_samples"] = [list(entry) for entry in self.retry_samples]
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "FailoverMetrics":
        return cls(
            kills=int(data.get("kills", 0)),
            heals=int(data.get("heals", 0)),
            repinned_clients=int(data.get("repinned_clients", 0)),
            orphaned_requests=int(data.get("orphaned_requests", 0)),
            degrades=int(data.get("degrades", 0)),
            stalls=int(data.get("stalls", 0)),
            lossy_uploads=int(data.get("lossy_uploads", 0)),
            ejections=int(data.get("ejections", 0)),
            readmits=int(data.get("readmits", 0)),
            ejected_repins=int(data.get("ejected_repins", 0)),
            probe_samples=int(data.get("probe_samples", 0)),
            retries_attempted=int(data.get("retries_attempted", 0)),
            retries_suppressed=int(data.get("retries_suppressed", 0)),
            timeline=[
                [float(time), action, int(shard)]
                for time, action, shard in data.get("timeline", [])
            ],
            service_samples=[
                [float(time), int(served)]
                for time, served in data.get("service_samples", [])
            ],
            retry_samples=[
                [float(time), int(sent), int(retried), int(suppressed)]
                for time, sent, retried, suppressed in data.get("retry_samples", [])
            ],
        )


@dataclass
class ClassMetrics:
    """Aggregates over all clients of one class ("good" or "bad")."""

    client_class: str
    clients: int = 0
    aggregate_bandwidth_bps: float = 0.0
    issued: int = 0
    served: int = 0
    denied: int = 0
    dropped: int = 0
    #: Upload retries the class's clients fired and budget-suppressed
    #: (zero — and absent from the serialised form — without retry policies).
    retries_attempted: int = 0
    retries_suppressed: int = 0
    bytes_paid: float = 0.0
    payment_time: Summary = field(default_factory=lambda: summarise([]))
    response_time: Summary = field(default_factory=lambda: summarise([]))
    mean_price_bytes: float = 0.0

    @property
    def finished(self) -> int:
        return self.served + self.denied + self.dropped

    @property
    def served_fraction(self) -> float:
        """Fraction of requests with an outcome that were served."""
        return ratio(self.served, self.finished)

    @property
    def demand_served_fraction(self) -> float:
        """Fraction of *all issued* requests that were served (stricter)."""
        return ratio(self.served, self.issued)

    def to_dict(self) -> dict:
        """A JSON-ready dictionary that :meth:`from_dict` can rebuild."""
        payload = {
            "client_class": self.client_class,
            "clients": self.clients,
            "aggregate_bandwidth_bps": self.aggregate_bandwidth_bps,
            "issued": self.issued,
            "served": self.served,
            "denied": self.denied,
            "dropped": self.dropped,
            "bytes_paid": self.bytes_paid,
            "payment_time": self.payment_time.as_dict(),
            "response_time": self.response_time.as_dict(),
            "mean_price_bytes": self.mean_price_bytes,
        }
        # Only-when-nonzero: policy-free runs serialise exactly as before.
        if self.retries_attempted:
            payload["retries_attempted"] = self.retries_attempted
        if self.retries_suppressed:
            payload["retries_suppressed"] = self.retries_suppressed
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ClassMetrics":
        """Rebuild class metrics serialised by :meth:`to_dict`."""
        return cls(
            client_class=data["client_class"],
            clients=int(data.get("clients", 0)),
            aggregate_bandwidth_bps=float(data.get("aggregate_bandwidth_bps", 0.0)),
            issued=int(data.get("issued", 0)),
            served=int(data.get("served", 0)),
            denied=int(data.get("denied", 0)),
            dropped=int(data.get("dropped", 0)),
            retries_attempted=int(data.get("retries_attempted", 0)),
            retries_suppressed=int(data.get("retries_suppressed", 0)),
            bytes_paid=float(data.get("bytes_paid", 0.0)),
            payment_time=Summary.from_dict(data.get("payment_time", {})),
            response_time=Summary.from_dict(data.get("response_time", {})),
            mean_price_bytes=float(data.get("mean_price_bytes", 0.0)),
        )


@dataclass
class ShardMetrics:
    """Per-front-end breakdown of a thinner-fleet run (§4.3 scale-out).

    One entry per thinner shard: how many clients the dispatch policy pinned
    to it, the admission work its thinner did, and the payment traffic it had
    to sink — the quantity §4.3's provisioning estimates size each front-end
    for.  Single-thinner runs carry exactly one entry.
    """

    shard: int
    thinner_host: str = ""
    clients: int = 0
    good_clients: int = 0
    bad_clients: int = 0
    aggregate_bandwidth_bps: float = 0.0
    requests_received: int = 0
    requests_admitted: int = 0
    requests_served: int = 0
    requests_dropped: int = 0
    free_admissions: int = 0
    auctions_held: int = 0
    payment_bytes_sunk: float = 0.0
    #: Payment bytes the shard's clients delivered (closed + still-open
    #: channels) — the empirical per-shard inflow the provisioning curve
    #: compares against ``(G + B) / shards``.
    client_bytes_paid: float = 0.0
    served_by_class: Dict[str, int] = field(default_factory=dict)
    received_by_class: Dict[str, int] = field(default_factory=dict)
    #: Pipeline front-stage attribution; empty outside pipeline defenses.
    stages: List[StageMetrics] = field(default_factory=list)
    #: Adaptive engagement windows; None outside adaptive defenses.
    engagement: Optional[EngagementMetrics] = None

    def to_dict(self) -> dict:
        """A JSON-ready dictionary that :meth:`from_dict` can rebuild.

        The ``stages``/``engagement`` keys are emitted only when present,
        which keeps the serialised schema byte-identical to earlier
        releases for every non-composite defense.
        """
        payload = {
            "shard": self.shard,
            "thinner_host": self.thinner_host,
            "clients": self.clients,
            "good_clients": self.good_clients,
            "bad_clients": self.bad_clients,
            "aggregate_bandwidth_bps": self.aggregate_bandwidth_bps,
            "requests_received": self.requests_received,
            "requests_admitted": self.requests_admitted,
            "requests_served": self.requests_served,
            "requests_dropped": self.requests_dropped,
            "free_admissions": self.free_admissions,
            "auctions_held": self.auctions_held,
            "payment_bytes_sunk": self.payment_bytes_sunk,
            "client_bytes_paid": self.client_bytes_paid,
            "served_by_class": dict(self.served_by_class),
            "received_by_class": dict(self.received_by_class),
        }
        if self.stages:
            payload["stages"] = [stage.to_dict() for stage in self.stages]
        if self.engagement is not None:
            payload["engagement"] = self.engagement.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ShardMetrics":
        """Rebuild shard metrics serialised by :meth:`to_dict`."""
        return cls(
            shard=int(data["shard"]),
            thinner_host=data.get("thinner_host", ""),
            clients=int(data.get("clients", 0)),
            good_clients=int(data.get("good_clients", 0)),
            bad_clients=int(data.get("bad_clients", 0)),
            aggregate_bandwidth_bps=float(data.get("aggregate_bandwidth_bps", 0.0)),
            requests_received=int(data.get("requests_received", 0)),
            requests_admitted=int(data.get("requests_admitted", 0)),
            requests_served=int(data.get("requests_served", 0)),
            requests_dropped=int(data.get("requests_dropped", 0)),
            free_admissions=int(data.get("free_admissions", 0)),
            auctions_held=int(data.get("auctions_held", 0)),
            payment_bytes_sunk=float(data.get("payment_bytes_sunk", 0.0)),
            client_bytes_paid=float(data.get("client_bytes_paid", 0.0)),
            served_by_class={
                key: int(value)
                for key, value in data.get("served_by_class", {}).items()
            },
            received_by_class={
                key: int(value)
                for key, value in data.get("received_by_class", {}).items()
            },
            stages=[
                StageMetrics.from_dict(entry) for entry in data.get("stages", [])
            ],
            engagement=(
                EngagementMetrics.from_dict(data["engagement"])
                if data.get("engagement") is not None
                else None
            ),
        )


@dataclass
class RunResult:
    """Everything the experiments and benchmarks need from one run."""

    duration: float
    defense: str
    server_capacity_rps: float
    good: ClassMetrics
    bad: ClassMetrics
    total_served: int = 0
    server_busy_time: float = 0.0
    allocation_by_class: Dict[str, float] = field(default_factory=dict)
    busy_allocation_by_class: Dict[str, float] = field(default_factory=dict)
    allocation_by_category: Dict[str, float] = field(default_factory=dict)
    served_by_category: Dict[str, int] = field(default_factory=dict)
    served_fraction_by_category: Dict[str, float] = field(default_factory=dict)
    mean_price_by_class: Dict[str, float] = field(default_factory=dict)
    price_upper_bound_bytes: float = 0.0
    auctions_held: int = 0
    free_admissions: int = 0
    payment_bytes_sunk: float = 0.0
    good_bandwidth_bps: float = 0.0
    bad_bandwidth_bps: float = 0.0
    #: Per-thinner-shard breakdown; a single entry outside fleet runs.
    shards: List[ShardMetrics] = field(default_factory=list)
    #: Fault-plan outcome; only set when the run injected faults.
    failover: Optional[FailoverMetrics] = None
    #: Rollup-mode measurement summary; only set when the run collected
    #: through the bounded telemetry plane (full-mode results stay
    #: byte-identical to the historical schema).
    telemetry: Optional[TelemetryMetrics] = None

    # -- the headline numbers ----------------------------------------------------

    @property
    def good_allocation(self) -> float:
        """Fraction of the server allocated to good clients (Figures 2/3)."""
        return self.allocation_by_class.get("good", 0.0)

    @property
    def bad_allocation(self) -> float:
        """Fraction of the server allocated to bad clients."""
        return self.allocation_by_class.get("bad", 0.0)

    @property
    def good_fraction_served(self) -> float:
        """Fraction of good requests that were served (Figure 3's third bar)."""
        return self.good.served_fraction

    @property
    def ideal_good_allocation(self) -> float:
        """The bandwidth-proportional ideal G/(G+B)."""
        return ratio(self.good_bandwidth_bps, self.good_bandwidth_bps + self.bad_bandwidth_bps)

    @property
    def server_utilisation(self) -> float:
        return ratio(self.server_busy_time, self.duration)

    @property
    def engagement(self) -> Optional[EngagementMetrics]:
        """The single-thinner run's engagement windows (adaptive defenses).

        Fleet runs carry one :class:`EngagementMetrics` per shard in
        :attr:`shards` (each shard's watcher engages independently); this
        convenience view is only defined when there is exactly one.
        """
        if len(self.shards) == 1:
            return self.shards[0].engagement
        return None

    @property
    def stages(self) -> List[StageMetrics]:
        """Pipeline stage totals summed across shards (empty otherwise)."""
        totals: Dict[str, StageMetrics] = {}
        order: List[str] = []
        for shard in self.shards:
            for stage in shard.stages:
                if stage.name not in totals:
                    totals[stage.name] = StageMetrics(name=stage.name)
                    order.append(stage.name)
                totals[stage.name].screened += stage.screened
                totals[stage.name].rejected += stage.rejected
        return [totals[name] for name in order]

    def as_dict(self) -> dict:
        """Flat dictionary, convenient for printing and JSON dumps."""
        return {
            "duration": self.duration,
            "defense": self.defense,
            "capacity_rps": self.server_capacity_rps,
            "good_allocation": self.good_allocation,
            "bad_allocation": self.bad_allocation,
            "ideal_good_allocation": self.ideal_good_allocation,
            "good_fraction_served": self.good_fraction_served,
            "good_served": self.good.served,
            "bad_served": self.bad.served,
            "good_denied": self.good.denied,
            "mean_payment_time_good": self.good.payment_time.mean,
            "p90_payment_time_good": self.good.payment_time.p90,
            "mean_price_good": self.mean_price_by_class.get("good", 0.0),
            "mean_price_bad": self.mean_price_by_class.get("bad", 0.0),
            "price_upper_bound": self.price_upper_bound_bytes,
            "auctions_held": self.auctions_held,
            "server_utilisation": self.server_utilisation,
        }

    # -- stable serialisation (the sweep results store's schema) -----------------

    def to_dict(self) -> dict:
        """Full structured dictionary; :meth:`from_dict` round-trips it.

        Unlike :meth:`as_dict` (a flat view for printing), this captures every
        field, so it is the stable schema the sweep results store and the CLI
        ``--out`` files use.
        """
        payload = {
            "duration": self.duration,
            "defense": self.defense,
            "server_capacity_rps": self.server_capacity_rps,
            "good": self.good.to_dict(),
            "bad": self.bad.to_dict(),
            "total_served": self.total_served,
            "server_busy_time": self.server_busy_time,
            "allocation_by_class": dict(self.allocation_by_class),
            "busy_allocation_by_class": dict(self.busy_allocation_by_class),
            "allocation_by_category": dict(self.allocation_by_category),
            "served_by_category": dict(self.served_by_category),
            "served_fraction_by_category": dict(self.served_fraction_by_category),
            "mean_price_by_class": dict(self.mean_price_by_class),
            "price_upper_bound_bytes": self.price_upper_bound_bytes,
            "auctions_held": self.auctions_held,
            "free_admissions": self.free_admissions,
            "payment_bytes_sunk": self.payment_bytes_sunk,
            "good_bandwidth_bps": self.good_bandwidth_bps,
            "bad_bandwidth_bps": self.bad_bandwidth_bps,
            "shards": [shard.to_dict() for shard in self.shards],
        }
        # Emitted only when set: fault-free results stay byte-identical to
        # the pre-fault-layer schema.
        if self.failover is not None:
            payload["failover"] = self.failover.to_dict()
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.to_dict()
        return payload

    def to_json(self, **dumps_kwargs) -> str:
        """The :meth:`to_dict` schema rendered as a JSON document."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a result serialised by :meth:`to_dict`."""
        return cls(
            duration=float(data["duration"]),
            defense=data["defense"],
            server_capacity_rps=float(data["server_capacity_rps"]),
            good=ClassMetrics.from_dict(data["good"]),
            bad=ClassMetrics.from_dict(data["bad"]),
            total_served=int(data.get("total_served", 0)),
            server_busy_time=float(data.get("server_busy_time", 0.0)),
            allocation_by_class=dict(data.get("allocation_by_class", {})),
            busy_allocation_by_class=dict(data.get("busy_allocation_by_class", {})),
            allocation_by_category=dict(data.get("allocation_by_category", {})),
            served_by_category={
                key: int(value)
                for key, value in data.get("served_by_category", {}).items()
            },
            served_fraction_by_category=dict(data.get("served_fraction_by_category", {})),
            mean_price_by_class=dict(data.get("mean_price_by_class", {})),
            price_upper_bound_bytes=float(data.get("price_upper_bound_bytes", 0.0)),
            auctions_held=int(data.get("auctions_held", 0)),
            free_admissions=int(data.get("free_admissions", 0)),
            payment_bytes_sunk=float(data.get("payment_bytes_sunk", 0.0)),
            good_bandwidth_bps=float(data.get("good_bandwidth_bps", 0.0)),
            bad_bandwidth_bps=float(data.get("bad_bandwidth_bps", 0.0)),
            shards=[
                ShardMetrics.from_dict(entry) for entry in data.get("shards", [])
            ],
            failover=(
                FailoverMetrics.from_dict(data["failover"])
                if data.get("failover") is not None
                else None
            ),
            telemetry=(
                TelemetryMetrics.from_dict(data["telemetry"])
                if data.get("telemetry") is not None
                else None
            ),
        )

    @classmethod
    def from_json(cls, document: str) -> "RunResult":
        """Rebuild a result from a :meth:`to_json` document."""
        return cls.from_dict(json.loads(document))


def _collect_class(deployment, client_class: str) -> ClassMetrics:
    clients = deployment.clients_of_class(client_class)
    metrics = ClassMetrics(client_class=client_class, clients=len(clients))
    telemetry = getattr(deployment, "telemetry", None)
    payment_times: List[float] = []
    response_times: List[float] = []
    prices: List[float] = []
    for client in clients:
        stats = client.stats
        metrics.aggregate_bandwidth_bps += client.upload_bandwidth_bps
        metrics.issued += stats.issued
        metrics.served += stats.served
        metrics.denied += stats.denied
        metrics.dropped += stats.dropped
        metrics.retries_attempted += stats.retries_attempted
        metrics.retries_suppressed += stats.retries_suppressed
        metrics.bytes_paid += client.total_bytes_spent()
        if telemetry is None:
            payment_times.extend(stats.payment_times)
            response_times.extend(stats.response_times)
            prices.extend(stats.prices)
    if telemetry is not None:
        # Rollup mode: the bounded collector already folded every served
        # request; per-client lists stayed empty by construction.
        payment_summary, response_summary, mean_price = telemetry.class_summaries(
            client_class
        )
        metrics.payment_time = payment_summary
        metrics.response_time = response_summary
        metrics.mean_price_bytes = mean_price
    else:
        metrics.payment_time = summarise(payment_times)
        metrics.response_time = summarise(response_times)
        metrics.mean_price_bytes = mean(prices)
    return metrics


def _merge_counts(targets: List[Dict], *sources) -> None:
    """Sum per-key dictionaries from ``sources`` into parallel ``targets``."""
    for target, source in zip(targets, sources):
        for key, value in source.items():
            target[key] = target.get(key, 0) + value


class _MergedServerStats:
    """The union of several shards' server stats (partitioned fleets).

    Presents the subset of :class:`~repro.httpd.server.ServerStats` the
    collector reads.  A single-server deployment never goes through this
    class (the one real stats object is used directly, keeping the floats
    byte-identical to the historical single-thinner path).
    """

    def __init__(self, stats_list) -> None:
        self.served = sum(stats.served for stats in stats_list)
        self.busy_time = sum(stats.busy_time for stats in stats_list)
        self.served_by_class: Dict[str, int] = {}
        self.busy_time_by_class: Dict[str, float] = {}
        self.served_by_category: Dict[str, int] = {}
        self.busy_time_by_category: Dict[str, float] = {}
        for stats in stats_list:
            _merge_counts(
                [
                    self.served_by_class,
                    self.busy_time_by_class,
                    self.served_by_category,
                    self.busy_time_by_category,
                ],
                stats.served_by_class,
                stats.busy_time_by_class,
                stats.served_by_category,
                stats.busy_time_by_category,
            )

    def allocation_by_class(self) -> Dict[str, float]:
        total = sum(self.served_by_class.values())
        if total == 0:
            return {}
        return {cls: count / total for cls, count in self.served_by_class.items()}

    def allocation_by_category(self) -> Dict[str, float]:
        total = sum(self.served_by_category.values())
        if total == 0:
            return {}
        return {cat: count / total for cat, count in self.served_by_category.items()}


def _mean_price_by_class(thinners) -> Dict[str, float]:
    """Mean winning bid per class across every shard's price book."""
    if len(thinners) == 1:
        return thinners[0].prices.average_by_class()
    # Type-aware merge: a rollup deployment's thinners carry
    # StreamingPriceBook instances, whose merged() sums exactly.
    books = [t.prices for t in thinners]
    return type(books[0]).merged(books).average_by_class()


def _collect_shards(deployment) -> List[ShardMetrics]:
    """One :class:`ShardMetrics` per thinner front-end."""
    shards: List[ShardMetrics] = []
    for index, thinner in enumerate(deployment.thinners):
        stats = thinner.stats
        metrics = ShardMetrics(
            shard=index,
            thinner_host=deployment.thinner_hosts[index].name,
            requests_received=stats.requests_received,
            requests_admitted=stats.requests_admitted,
            requests_served=stats.requests_served,
            requests_dropped=stats.requests_dropped,
            free_admissions=stats.free_admissions,
            auctions_held=stats.auctions_held,
            payment_bytes_sunk=stats.payment_bytes_sunk,
            served_by_class=dict(stats.served_by_class),
            received_by_class=dict(stats.received_by_class),
        )
        stage_triples = getattr(thinner, "stage_metrics", None)
        if stage_triples:
            metrics.stages = [
                StageMetrics(name=name, screened=screened, rejected=rejected)
                for name, screened, rejected in stage_triples
            ]
        engagement_log = getattr(thinner, "engagement_log", None)
        if engagement_log is not None:
            metrics.engagement = EngagementMetrics.from_log(
                engagement_log, deployment.duration
            )
        shards.append(metrics)
    # One pass over the clients (not one scan per shard) to attribute them.
    for client in deployment.clients:
        metrics = shards[getattr(client, "shard", 0)]
        metrics.clients += 1
        if client.client_class == "good":
            metrics.good_clients += 1
        elif client.client_class == "bad":
            metrics.bad_clients += 1
        metrics.aggregate_bandwidth_bps += client.upload_bandwidth_bps
        metrics.client_bytes_paid += client.total_bytes_spent()
    return shards


def _collect_failover(deployment, good, bad) -> Optional[FailoverMetrics]:
    """Failover metrics when faults were injected or a prober ran, else None."""
    injector = getattr(deployment, "fault_injector", None)
    prober = getattr(deployment, "health_prober", None)
    if injector is None and prober is None:
        return None
    metrics = FailoverMetrics.from_injector(injector, prober)
    metrics.retries_attempted = good.retries_attempted + bad.retries_attempted
    metrics.retries_suppressed = good.retries_suppressed + bad.retries_suppressed
    return metrics


def collect(deployment) -> RunResult:
    """Build a :class:`RunResult` from a deployment that has finished running."""
    good = _collect_class(deployment, "good")
    bad = _collect_class(deployment, "bad")
    servers = deployment.servers
    if len(servers) == 1:
        server_stats = servers[0].stats
    else:
        server_stats = _MergedServerStats([server.stats for server in servers])
    thinners = deployment.thinners

    good_bw = deployment.aggregate_bandwidth_bps("good")
    bad_bw = deployment.aggregate_bandwidth_bps("bad")
    capacity = deployment.config.server_capacity_rps
    upper_bound = ratio(good_bw + bad_bw, 8.0 * capacity)  # bytes per request

    served_by_category = dict(server_stats.served_by_category)
    allocation_by_category = server_stats.allocation_by_category()

    served_fraction_by_category: Dict[str, float] = {}
    issued_by_category: Dict[str, int] = {}
    finished_by_category: Dict[str, int] = {}
    for client in deployment.clients:
        if client.category is None:
            continue
        issued_by_category[client.category] = (
            issued_by_category.get(client.category, 0) + client.stats.issued
        )
        finished_by_category[client.category] = (
            finished_by_category.get(client.category, 0)
            + client.stats.served
            + client.stats.denied
            + client.stats.dropped
        )
    for category, finished in finished_by_category.items():
        served = 0
        for client in deployment.clients:
            if client.category == category:
                served += client.stats.served
        served_fraction_by_category[category] = ratio(served, finished)

    return RunResult(
        duration=deployment.duration,
        defense=deployment.defense_label,
        server_capacity_rps=capacity,
        good=good,
        bad=bad,
        total_served=server_stats.served,
        server_busy_time=server_stats.busy_time,
        allocation_by_class=server_stats.allocation_by_class(),
        busy_allocation_by_class={
            cls: ratio(busy, server_stats.busy_time)
            for cls, busy in server_stats.busy_time_by_class.items()
        },
        allocation_by_category=allocation_by_category,
        served_by_category=served_by_category,
        served_fraction_by_category=served_fraction_by_category,
        mean_price_by_class=_mean_price_by_class(thinners),
        price_upper_bound_bytes=upper_bound,
        auctions_held=sum(thinner.stats.auctions_held for thinner in thinners),
        free_admissions=sum(thinner.stats.free_admissions for thinner in thinners),
        payment_bytes_sunk=sum(
            thinner.stats.payment_bytes_sunk for thinner in thinners
        ),
        good_bandwidth_bps=good_bw,
        bad_bandwidth_bps=bad_bw,
        shards=_collect_shards(deployment),
        failover=_collect_failover(deployment, good, bad),
        telemetry=(
            deployment.telemetry.metrics()
            if getattr(deployment, "telemetry", None) is not None
            else None
        ),
    )
