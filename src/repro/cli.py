"""Command-line interface: run any of the paper's experiments from a shell.

Examples::

    speakup-repro demo --good 5 --bad 5 --capacity 20
    speakup-repro figure2 --duration 60 --client-scale 0.5
    speakup-repro figure3
    speakup-repro costs            # Figures 4 and 5
    speakup-repro figure6
    speakup-repro figure7
    speakup-repro figure8
    speakup-repro figure9
    speakup-repro advantage        # section 7.4
    speakup-repro capacity         # section 7.1 analogue
    speakup-repro adaptive         # attack-triggered engagement sweep
    speakup-repro failover --fault-plan plan.json   # replay a saved plan
    speakup-repro brownout         # gray failures: retry storms + ejection
    speakup-repro fabric           # dispatch strategies across fabrics
    speakup-repro scenarios        # list the named scenarios
    speakup-repro scenarios --doc  # emit the docs/SCENARIOS.md gallery
    speakup-repro defenses         # list the registered defenses + knobs
    speakup-repro sweep --scenario lan-baseline \\
        --set good_clients=10 --set bad_clients=10 --set capacity_rps=40 \\
        --grid defense=speakup,none --replicates 3 --jobs 4 --out results.json
    speakup-repro bench            # run the pinned perf suite, append to
                                   # BENCH_speakup.json
    speakup-repro bench --quick --check   # CI: fail on events/sec regression
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Optional, Sequence

from repro import quick_demo
from repro.errors import ReproError
from repro.scenarios.registry import build_scenario, scenario_description, scenario_names
from repro.scenarios.runner import Sweep, SweepRunner, save_results
from repro.experiments.adversary import empirical_adversarial_advantage, format_window_sweep, window_sweep
from repro.experiments.allocation import (
    figure2_allocation,
    figure3_provisioning,
    format_figure2,
    format_figure3,
)
from repro.experiments.base import ExperimentScale
from repro.experiments.bottleneck import figure8_shared_bottleneck, format_bottleneck
from repro.experiments.capacity import thinner_sink_capacity
from repro.experiments.cost import figure4_5_costs, format_costs
from repro.experiments.cross_traffic import figure9_cross_traffic, format_cross_traffic
from repro.experiments.heterogeneous import (
    figure6_bandwidth_heterogeneity,
    figure7_rtt_heterogeneity,
    format_categories,
)
from repro.metrics.tables import format_table


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds per run (paper: 600)")
    parser.add_argument("--client-scale", type=float, default=0.5,
                        help="fraction of the paper's client count to simulate (paper: 1.0)")
    parser.add_argument("--seed", type=int, default=0, help="root random seed")


def _scale_from(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(duration=args.duration, client_scale=args.client_scale, seed=args.seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="speakup-repro",
        description="Reproduction of 'DDoS Defense by Offense' (speak-up), SIGCOMM 2006",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run a small attacked-server demo")
    demo.add_argument("--good", type=int, default=5)
    demo.add_argument("--bad", type=int, default=5)
    demo.add_argument("--capacity", type=float, default=20.0)
    demo.add_argument("--duration", type=float, default=20.0)
    # No argparse `choices`: unknown names go through the same clean
    # one-line ReproError path (listing the valid choices) as every other
    # subcommand, instead of argparse's usage dump.
    demo.add_argument("--defense", default="speakup",
                      help="admission policy: speakup, retry, quantum, none, any "
                           "registered defense (see 'speakup-repro defenses'), or "
                           "a 'filter>admission' pipeline such as ratelimit>speakup")
    demo.add_argument("--seed", type=int, default=0)

    for name, help_text in [
        ("figure2", "allocation vs good-bandwidth fraction"),
        ("figure3", "allocation and served fraction across capacities"),
        ("costs", "figures 4 and 5: payment time and price"),
        ("figure6", "heterogeneous client bandwidths"),
        ("figure7", "heterogeneous client RTTs"),
        ("figure8", "good and bad clients sharing a bottleneck"),
        ("figure9", "impact on bystander HTTP downloads"),
        ("advantage", "section 7.4: empirical adversarial advantage"),
        ("windows", "section 7.4: bad-client window sweep"),
    ]:
        sub = subparsers.add_parser(name, help=help_text)
        _add_scale_arguments(sub)

    fleet = subparsers.add_parser(
        "fleet",
        help="section 4.3: empirical thinner-fleet provisioning curve",
        description=(
            "Run the same over-subscribed workload in front of 1, 2, 4, ... "
            "thinner shards and compare each shard's measured payment sink "
            "rate against the closed form (G+B)/N of "
            "repro.analysis.provisioning."
        ),
    )
    _add_scale_arguments(fleet)
    fleet.add_argument("--shards", default="1,2,4,8", metavar="N1,N2,...",
                       help="comma-separated fleet sizes to sweep")
    fleet.add_argument("--policy", default="least-loaded",
                       help="shard dispatch policy (hash, least-loaded, random)")
    fleet.add_argument("--admission", default="partitioned",
                       help="admission mode (partitioned, pooled)")

    failover = subparsers.add_parser(
        "failover",
        help="mid-run shard kill/heal: good-client service dip and recovery",
        description=(
            "Run the fleet-failover scenario (the lan mix on a sharded "
            "fleet) with a fault plan that kills one shard mid-run and "
            "heals it later, and report the good clients' service rate "
            "before the kill, through the outage, and after the heal."
        ),
    )
    _add_scale_arguments(failover)
    failover.add_argument("--shards", type=int, default=4,
                          help="fleet size (must be > 1)")
    failover.add_argument("--policy", default="hash",
                          help="shard dispatch policy (hash, least-loaded, random)")
    failover.add_argument("--admission", default="pooled",
                          help="admission mode (pooled, partitioned); pooled keeps "
                               "full capacity reachable after the kill")
    failover.add_argument("--kill-shard", type=int, default=1,
                          help="which shard dies")
    failover.add_argument("--kill-at", type=float, default=None, metavar="S",
                          help="kill time (default: a third of the run)")
    failover.add_argument("--heal-at", type=float, default=None, metavar="S",
                          help="heal time (default: two thirds of the run)")
    failover.add_argument("--repin-ttl", type=float, default=2.0, metavar="S",
                          help="max DNS-style re-pin lag per orphaned client")
    failover.add_argument("--fault-plan", default=None, metavar="FILE",
                          help="JSON fault plan replacing the generated kill/heal "
                               "pulse (validated against --shards and --duration; "
                               "pass matching --kill-at/--heal-at so the report's "
                               "windows line up)")

    brownout = subparsers.add_parser(
        "brownout",
        help="gray failures: retry-storm amplification and health-driven ejection",
        description=(
            "Run the fleet-brownout scenario four ways: a fleet-wide lossy "
            "pulse under naive and budgeted client retry policies (measuring "
            "retry amplification), then a single-shard stall with and "
            "without the health prober (measuring good-client service "
            "during the pulse with ejection vs without)."
        ),
    )
    _add_scale_arguments(brownout)
    brownout.add_argument("--shards", type=int, default=4,
                          help="fleet size (must be > 1)")
    brownout.add_argument("--policy", default="hash",
                          help="shard dispatch policy (hash, least-loaded, random)")
    brownout.add_argument("--admission", default="pooled",
                          help="admission mode (pooled, partitioned)")
    brownout.add_argument("--loss-p", type=float, default=0.6, metavar="P",
                          help="upload loss probability during the lossy pulse")
    brownout.add_argument("--stall-shard", type=int, default=0,
                          help="which shard stalls in the ejection arms")
    brownout.add_argument("--start-at", type=float, default=None, metavar="S",
                          help="pulse start (default: a third of the run)")
    brownout.add_argument("--end-at", type=float, default=None, metavar="S",
                          help="pulse end (default: two thirds of the run)")
    brownout.add_argument("--probe-interval", type=float, default=0.5, metavar="S",
                          help="health-prober sampling interval")

    fabric = subparsers.add_parser(
        "fabric",
        help="dispatch strategies across datacenter fabrics (star, leaf-spine, fat-tree)",
        description=(
            "Run the fabric-mega population on each requested fabric under "
            "each requested dispatch strategy and tabulate good-client "
            "service and per-shard payment imbalance.  Pass --kill-shard to "
            "compose a mid-run kill/heal pulse onto every cell."
        ),
    )
    _add_scale_arguments(fabric)
    fabric.add_argument("--shards", type=int, default=8,
                        help="fleet size behind the frontend")
    fabric.add_argument("--fabrics", default="star,leaf-spine,fat-tree",
                        metavar="F1,F2,...",
                        help="comma-separated fabrics (star, leaf-spine, fat-tree)")
    fabric.add_argument("--strategies", default=None, metavar="S1,S2,...",
                        help="comma-separated dispatch strategies "
                             "(default: every registered strategy)")
    fabric.add_argument("--oversubscription", type=float, default=4.0,
                        help="fabric core oversubscription ratio")
    fabric.add_argument("--cross-pairs", type=int, default=4,
                        help="bystander cross-traffic pairs on fabric topologies")
    fabric.add_argument("--probe", default="pins",
                        help="load signal for probe-driven strategies "
                             "(pins, contenders, sink-rate, none)")
    fabric.add_argument("--kill-shard", type=int, default=None,
                        help="compose a kill/heal pulse on this shard")
    fabric.add_argument("--kill-at", type=float, default=None, metavar="S",
                        help="kill time (default: a quarter of the run)")
    fabric.add_argument("--heal-at", type=float, default=None, metavar="S",
                        help="heal time (default: 60%% of the run)")

    capacity = subparsers.add_parser("capacity", help="section 7.1: thinner sink-rate analogue")
    capacity.add_argument("--measure-seconds", type=float, default=0.5)

    adaptive = subparsers.add_parser(
        "adaptive",
        help="attack-triggered engagement: good-client service vs watcher cadence",
        description=(
            "Run the adaptive-pulse workload (steady good demand, one "
            "full-rate attack pulse) under the adaptive defense at several "
            "load-watcher cadences, plus always-on and undefended "
            "baselines, and report engagement lag, engaged time, and the "
            "good clients' fraction served."
        ),
    )
    _add_scale_arguments(adaptive)
    adaptive.add_argument("--intervals", default="0.5,1,2,4", metavar="S1,S2,...",
                          help="comma-separated watcher check intervals (seconds)")

    scenarios = subparsers.add_parser(
        "scenarios", help="list the named scenarios in the registry"
    )
    scenarios.add_argument(
        "--doc",
        action="store_true",
        help="emit the full markdown scenario gallery (docs/SCENARIOS.md)",
    )

    subparsers.add_parser(
        "defenses",
        help="list the registered defenses with their parameters",
        description=(
            "List every defense in the registry (the vocabulary of "
            "--defense, ScenarioSpec.defense, and DefenseSpec.name) with "
            "its one-line description and the factory parameters a "
            "DefenseSpec can set."
        ),
    )

    bench = subparsers.add_parser(
        "bench",
        help="run the pinned perf suite and track it in BENCH_speakup.json",
        description=(
            "Run the pinned three-scale benchmark suite (lan-small, "
            "tiers-medium, stress-mega), print events/sec plus the hot-path "
            "counters, and append a dated entry to the tracked results file "
            "so the performance trajectory accumulates across commits."
        ),
    )
    bench.add_argument("--quick", action="store_true",
                       help="reduced scales (CI smoke; entries are tagged 'quick')")
    bench.add_argument("--label", default="",
                       help="free-form label stored with the entry")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="results file (default: ./BENCH_speakup.json)")
    bench.add_argument("--check", action="store_true",
                       help="compare against the last committed entry of the same "
                            "mode instead of appending; exit 3 on regression")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="allowed regression for --check (default 0.30)")
    bench.add_argument("--check-signal", choices=["all", "work"], default="all",
                       help="--check signals: 'all' (events/sec + work ratio) or "
                            "'work' (machine-independent flows-touched-per-event "
                            "only; use when the committed baseline was recorded "
                            "on a different machine, e.g. in CI)")
    bench.add_argument("--no-save", action="store_true",
                       help="print the measurements without touching the file")
    bench.add_argument("--profile", action="store_true",
                       help="run the suite under cProfile and write the top-40 "
                            "cumulative stats next to the results file")
    bench.add_argument("--fresh-out", default=None, metavar="FILE",
                       help="also write just this run's entry to FILE "
                            "(e.g. a CI artifact), in any mode")

    sweep = subparsers.add_parser(
        "sweep",
        help="expand a parameter grid over a named scenario and run it",
        description=(
            "Expand a parameter grid (and seed replicates) over a named scenario "
            "and run every point, serially or across worker processes. "
            "--set passes arguments to the scenario factory; --grid varies spec "
            "fields (dotted paths such as capacity_rps, defense, or "
            "groups.1.window) over comma-separated values."
        ),
    )
    sweep.add_argument("--scenario", default="lan-baseline",
                       help="registry name (see 'speakup-repro scenarios')")
    sweep.add_argument("--set", dest="settings", action="append", default=[],
                       metavar="KEY=VALUE", help="scenario factory argument (repeatable)")
    sweep.add_argument("--grid", dest="grids", action="append", default=[],
                       metavar="PATH=V1,V2,...",
                       help="sweep a spec field over values (repeatable)")
    sweep.add_argument("--replicates", type=int, default=None,
                       help="seed replicates per grid point (derived substreams)")
    sweep.add_argument("--seeds", default=None, metavar="S1,S2,...",
                       help="explicit root seeds (alternative to --replicates)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial; results are identical)")
    sweep.add_argument("--out", default=None, metavar="FILE",
                       help="write the JSON results store to FILE")

    campaign = subparsers.add_parser(
        "campaign",
        help="checkpointed out-of-core sweeps: run, resume, status, merge",
        description=(
            "A campaign is a sweep executed by worker processes that stream "
            "records to per-worker JSONL spools with checkpoint manifests. "
            "Kill it mid-run, 'campaign resume' re-executes only the missing "
            "points, and 'campaign merge' writes a results document "
            "byte-identical to an uninterrupted 'sweep --out' run."
        ),
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="initialise a campaign directory and execute every point"
    )
    campaign_run.add_argument("--scenario", default="lan-baseline",
                              help="registry name (see 'speakup-repro scenarios')")
    campaign_run.add_argument("--set", dest="settings", action="append", default=[],
                              metavar="KEY=VALUE",
                              help="scenario factory argument (repeatable)")
    campaign_run.add_argument("--grid", dest="grids", action="append", default=[],
                              metavar="PATH=V1,V2,...",
                              help="sweep a spec field over values (repeatable)")
    campaign_run.add_argument("--replicates", type=int, default=None,
                              help="seed replicates per grid point")
    campaign_run.add_argument("--seeds", default=None, metavar="S1,S2,...",
                              help="explicit root seeds")
    campaign_run.add_argument("--dir", dest="directory", required=True,
                              metavar="DIR", help="campaign directory (created)")
    campaign_run.add_argument("--jobs", type=int, default=1,
                              help="concurrent worker processes")
    campaign_run.add_argument("--workers", type=int, default=None,
                              help="spool count, fixed at plan time "
                                   "(default: --jobs); resume never re-shards")
    campaign_run.add_argument("--checkpoint-every", type=int, default=8,
                              metavar="N", help="fsync + manifest every N records")
    campaign_run.add_argument("--fail-after", type=int, default=None, metavar="N",
                              help="test hook: crash one worker after N records "
                                   "(torn spool line, exit mid-write)")
    campaign_run.add_argument("--fail-worker", type=int, default=0,
                              help="which worker the --fail-after hook crashes")

    campaign_resume = campaign_sub.add_parser(
        "resume", help="repair torn spools and execute only the missing points"
    )
    campaign_resume.add_argument("--dir", dest="directory", required=True,
                                 metavar="DIR", help="existing campaign directory")
    campaign_resume.add_argument("--jobs", type=int, default=1,
                                 help="concurrent worker processes")

    campaign_status_p = campaign_sub.add_parser(
        "status", help="report per-worker progress without executing anything"
    )
    campaign_status_p.add_argument("--dir", dest="directory", required=True,
                                   metavar="DIR", help="campaign directory")

    campaign_merge = campaign_sub.add_parser(
        "merge", help="stream-merge the spools into one results document"
    )
    campaign_merge.add_argument("--dir", dest="directory", required=True,
                                metavar="DIR", help="campaign directory")
    campaign_merge.add_argument("--out", required=True, metavar="FILE",
                                help="results file (readable by load_results/plot)")

    return parser


def _load_fault_plan(path: str):
    """Load a JSON fault plan, mapping every failure to a one-line error."""
    import json

    from repro.faults.spec import FaultPlan

    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ReproError(f"--fault-plan: cannot read {path!r}: {error}")
    except json.JSONDecodeError as error:
        raise ReproError(f"--fault-plan: {path!r} is not valid JSON: {error}")
    try:
        return FaultPlan.from_dict(data)
    except (AttributeError, KeyError, TypeError, ValueError) as error:
        raise ReproError(f"--fault-plan: malformed plan in {path!r}: {error}")


def _parse_value(text: str) -> Any:
    """Interpret a CLI value as int, float, bool, or string (in that order)."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def _parse_pair(entry: str, option: str) -> tuple:
    key, separator, value = entry.partition("=")
    if not separator or not key or not value:
        raise ReproError(f"{option} expects KEY=VALUE, got {entry!r}")
    return key, value


def _build_sweep(args: argparse.Namespace) -> Sweep:
    """Expand --scenario/--set/--grid/--seeds/--replicates into a Sweep."""
    overrides = {}
    for entry in args.settings:
        key, value = _parse_pair(entry, "--set")
        overrides[key] = _parse_value(value)
    spec = build_scenario(args.scenario, **overrides)

    axes = {}
    for entry in args.grids:
        path, values = _parse_pair(entry, "--grid")
        axes[path] = tuple(_parse_value(value) for value in values.split(","))

    seeds = None
    if args.seeds is not None:
        try:
            seeds = tuple(int(seed) for seed in args.seeds.split(","))
        except ValueError:
            raise ReproError(f"--seeds expects comma-separated integers, got {args.seeds!r}")
    return Sweep(spec, axes=axes, seeds=seeds, replicates=args.replicates)


def _run_sweep(args: argparse.Namespace) -> int:
    sweep = _build_sweep(args)
    axes = sweep.axes
    runner = SweepRunner(jobs=args.jobs)
    records = runner.run(sweep)
    if args.out:
        save_results(records, args.out)

    axis_paths = [path for path in axes]
    rows = []
    for record in records:
        point = ", ".join(f"{path}={record.overrides[path]}" for path in axis_paths)
        rows.append((
            point or "-",
            record.seed,
            record.result.good_allocation,
            record.result.bad_allocation,
            record.result.good_fraction_served,
        ))
    print(format_table(
        headers=["point", "seed", "good_alloc", "bad_alloc", "good_served_frac"],
        rows=rows,
        title=(
            f"Sweep over {args.scenario!r}: {len(records)} runs"
            + (f" -> {args.out}" if args.out else "")
        ),
    ))
    return 0


def _print_campaign_status(status) -> int:
    """Tabulate a CampaignStatus; exit 0 when complete, 4 when points remain."""
    rows = [
        (
            worker.worker,
            worker.done,
            worker.assigned,
            "torn tail" if worker.torn else ("complete" if worker.complete else "behind"),
        )
        for worker in status.workers
    ]
    print(format_table(
        headers=["worker", "done", "assigned", "state"],
        rows=rows,
        title=(
            f"Campaign {status.directory}: {status.done}/{status.points} points"
            + ("" if status.complete else f" ({status.missing} missing)")
        ),
    ))
    if status.complete:
        return 0
    print("campaign: incomplete; run 'campaign resume' to finish it",
          file=sys.stderr)
    return 4


def _run_campaign(args: argparse.Namespace) -> int:
    from repro.campaigns import CampaignRunner, CampaignStore, campaign_status

    if args.campaign_command == "run":
        runner = CampaignRunner(jobs=args.jobs)
        status = runner.run(
            _build_sweep(args),
            args.directory,
            workers=args.workers,
            checkpoint_every=args.checkpoint_every,
            fail_after=args.fail_after,
            fail_worker=args.fail_worker,
        )
        return _print_campaign_status(status)
    if args.campaign_command == "resume":
        status = CampaignRunner(jobs=args.jobs).resume(args.directory)
        return _print_campaign_status(status)
    if args.campaign_command == "status":
        return _print_campaign_status(campaign_status(args.directory))
    # merge
    written = CampaignStore(args.directory).merge(args.out)
    print(f"campaign: merged {written} records -> {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``speakup-repro`` console script.

    Returns 0 on success and 2 on a configuration error (bad argument
    values, unknown scenarios, ...), printing a one-line message rather
    than a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(parser, args)
    except ReproError as error:
        print(f"speakup-repro: error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout disappeared mid-print (e.g. piping into `head`): exit
        # quietly like a well-behaved filter, pointing stdout at devnull so
        # the interpreter's shutdown flush does not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1
    except OSError as error:
        # E.g. --out pointing into a directory that does not exist.
        print(f"speakup-repro: error: {error}", file=sys.stderr)
        return 2


def _run_bench(args: argparse.Namespace) -> int:
    from repro.perf import bench as perf

    out = args.out or perf.BENCH_FILENAME
    tolerance = perf.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    mode = "quick" if args.quick else "full"
    baseline = None
    if args.check:
        # Fail before the (potentially minutes-long) suite runs, not after.
        baseline = perf.latest_entry(perf.load_document(out), mode)
        if baseline is None:
            raise ReproError(
                f"no committed {mode!r} baseline entry in {out!r} to check against"
            )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    measurements = perf.run_bench(
        quick=args.quick,
        progress=lambda name: print(f"bench: running {name} ...", file=sys.stderr),
    )
    if profiler is not None:
        import io
        import pstats

        profiler.disable()
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(40)
        profile_path = os.path.splitext(out)[0] + ".profile.txt"
        with open(profile_path, "w", encoding="utf-8") as handle:
            handle.write(buffer.getvalue())
        print(f"bench: wrote cProfile top-40 (cumulative) to {profile_path}",
              file=sys.stderr)
    print(format_table(
        headers=["case", "clients", "sim_s", "wall_s", "events", "events/s",
                 "waterfills", "flows/call", "cache_hits", "scan/auction"],
        rows=perf.format_measurements(measurements),
        title=f"Pinned perf suite ({'quick' if args.quick else 'full'} mode)",
    ))

    # One entry for the run, shared by --fresh-out and the tracked file so
    # the artifact and the appended entry carry the same timestamp.
    entry = perf.make_entry(measurements, label=args.label, quick=args.quick)
    if args.fresh_out:
        perf.save_document(
            args.fresh_out, {"version": perf.BENCH_VERSION, "entries": [entry]}
        )

    if args.check:
        # Measurement-plane gauges: surfaced with the check, never gated.
        for line in perf.format_gauges(measurements):
            print(f"bench: gauges: {line}")
        problems = perf.check_regression(
            measurements, baseline, tolerance=tolerance, signals=args.check_signal
        )
        if problems:
            for problem in problems:
                print(f"bench: REGRESSION: {problem}", file=sys.stderr)
            return 3
        print(f"bench: no regression vs entry {baseline.get('date', '?')} "
              f"(tolerance {tolerance:.0%}, signals: {args.check_signal})")
        return 0

    if not args.no_save:
        perf.append_entry(out, entry)
        print(f"bench: appended entry {entry['date']} to {out}")
    return 0


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.command == "scenarios":
        if args.doc:
            from repro.scenarios.registry import scenario_markdown

            print(scenario_markdown(), end="")
            return 0
        print(format_table(
            headers=["scenario", "description"],
            rows=[(name, scenario_description(name)) for name in scenario_names()],
            title="Named scenarios (use with 'speakup-repro sweep --scenario NAME')",
        ))
        return 0

    if args.command == "defenses":
        from repro.defenses import registry as defense_registry

        def _format_parameters(name: str) -> str:
            pairs = defense_registry.parameters(name)
            if not pairs:
                return "-"
            return ", ".join(
                f"{parameter}={default!r}" for parameter, default in pairs
            )

        print(format_table(
            headers=["defense", "description", "parameters (DefenseSpec kwargs)"],
            rows=[
                (name, defense_registry.create(name).describe(), _format_parameters(name))
                for name in defense_registry.names()
            ],
            title=(
                "Registered defenses (use with --defense, ScenarioSpec.defense, "
                "or DefenseSpec)"
            ),
        ))
        return 0

    if args.command == "adaptive":
        from repro.experiments.adaptive import adaptive_engagement, format_adaptive

        try:
            intervals = tuple(float(value) for value in args.intervals.split(","))
        except ValueError:
            raise ReproError(
                f"--intervals expects comma-separated seconds, got {args.intervals!r}"
            )
        print(format_adaptive(adaptive_engagement(_scale_from(args), intervals)))
        return 0

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command == "campaign":
        return _run_campaign(args)

    if args.command == "bench":
        return _run_bench(args)

    if args.command == "demo":
        result = quick_demo(
            good_clients=args.good,
            bad_clients=args.bad,
            capacity_rps=args.capacity,
            duration=args.duration,
            defense=args.defense,
            seed=args.seed,
        )
        print(format_table(
            headers=["metric", "value"],
            rows=[(key, value) for key, value in result.as_dict().items()],
            title=f"Demo: {args.good} good + {args.bad} bad clients, defense={args.defense}",
        ))
        return 0

    if args.command == "capacity":
        results = thinner_sink_capacity(duration_seconds=args.measure_seconds)
        print(format_table(
            headers=["chunk_bytes", "Mbits_per_s", "chunks_per_s"],
            rows=[(r.chunk_bytes, r.mbits_per_second, r.chunks_per_second) for r in results],
            title="Section 7.1 analogue: payment accounting sink rate (Python hot path)",
        ))
        return 0

    if args.command == "fleet":
        from repro.experiments.fleet import fleet_provisioning_curve, format_fleet

        try:
            shard_counts = tuple(int(n) for n in args.shards.split(","))
        except ValueError:
            raise ReproError(
                f"--shards expects comma-separated integers, got {args.shards!r}"
            )
        rows = fleet_provisioning_curve(
            _scale_from(args),
            shard_counts=shard_counts,
            shard_policy=args.policy,
            admission_mode=args.admission,
        )
        print(format_fleet(rows))
        return 0

    if args.command == "failover":
        from repro.experiments.failover import failover_pulse, format_failover

        plan = _load_fault_plan(args.fault_plan) if args.fault_plan else None
        outcome = failover_pulse(
            _scale_from(args),
            shards=args.shards,
            shard_policy=args.policy,
            admission_mode=args.admission,
            kill_shard=args.kill_shard,
            kill_at_s=args.kill_at,
            heal_at_s=args.heal_at,
            repin_ttl_s=args.repin_ttl,
            fault_plan=plan,
        )
        print(format_failover(outcome))
        return 0

    if args.command == "brownout":
        from repro.experiments.brownout import brownout_comparison, format_brownout

        outcome = brownout_comparison(
            _scale_from(args),
            shards=args.shards,
            shard_policy=args.policy,
            admission_mode=args.admission,
            loss_p=args.loss_p,
            stall_shard=args.stall_shard,
            start_at_s=args.start_at,
            end_at_s=args.end_at,
            probe_interval_s=args.probe_interval,
        )
        print(format_brownout(outcome))
        return 0

    if args.command == "fabric":
        from repro.core.routing import ROUTER_STRATEGY_NAMES
        from repro.experiments.fabric import fabric_strategy_comparison, format_fabric

        fabrics = tuple(name.strip() for name in args.fabrics.split(",") if name.strip())
        if args.strategies is None:
            strategies = ROUTER_STRATEGY_NAMES
        else:
            strategies = tuple(
                name.strip() for name in args.strategies.split(",") if name.strip()
            )
        rows = fabric_strategy_comparison(
            _scale_from(args),
            fabrics=fabrics,
            strategies=strategies,
            shards=args.shards,
            oversubscription=args.oversubscription,
            cross_traffic_pairs=args.cross_pairs,
            probe=args.probe,
            kill_shard=args.kill_shard,
            kill_at_s=args.kill_at,
            heal_at_s=args.heal_at,
        )
        print(format_fabric(rows))
        return 0

    scale = _scale_from(args)
    if args.command == "figure2":
        print(format_figure2(figure2_allocation(scale)))
    elif args.command == "figure3":
        print(format_figure3(figure3_provisioning(scale)))
    elif args.command == "costs":
        print(format_costs(figure4_5_costs(scale)))
    elif args.command == "figure6":
        print(format_categories(
            figure6_bandwidth_heterogeneity(scale), "bandwidth_Mbit",
            "Figure 6: allocation across bandwidth categories (all good clients)",
        ))
    elif args.command == "figure7":
        for client_class in ("good", "bad"):
            print(format_categories(
                figure7_rtt_heterogeneity(scale, client_class=client_class), "rtt_ms",
                f"Figure 7: allocation across RTT categories (all {client_class} clients)",
            ))
    elif args.command == "figure8":
        print(format_bottleneck(figure8_shared_bottleneck(scale)))
    elif args.command == "figure9":
        print(format_cross_traffic(figure9_cross_traffic(scale)))
    elif args.command == "advantage":
        outcome = empirical_adversarial_advantage(scale)
        print(format_table(
            headers=["metric", "value"],
            rows=[
                ("ideal capacity c_id (req/s)", outcome.ideal_capacity_rps),
                ("measured capacity (req/s)", outcome.measured_capacity_rps),
                ("adversarial advantage", outcome.advantage),
                ("served fraction at c_id", outcome.served_fraction_at_ideal),
            ],
            title="Section 7.4: empirical adversarial advantage (paper: 15%)",
        ))
    elif args.command == "windows":
        print(format_window_sweep(window_sweep(scale)))
    else:  # pragma: no cover - argparse enforces choices
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
