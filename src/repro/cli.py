"""Command-line interface: run any of the paper's experiments from a shell.

Examples::

    speakup-repro demo --good 5 --bad 5 --capacity 20
    speakup-repro figure2 --duration 60 --client-scale 0.5
    speakup-repro figure3
    speakup-repro costs            # Figures 4 and 5
    speakup-repro figure6
    speakup-repro figure7
    speakup-repro figure8
    speakup-repro figure9
    speakup-repro advantage        # section 7.4
    speakup-repro capacity         # section 7.1 analogue
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import quick_demo
from repro.experiments.adversary import empirical_adversarial_advantage, format_window_sweep, window_sweep
from repro.experiments.allocation import (
    figure2_allocation,
    figure3_provisioning,
    format_figure2,
    format_figure3,
)
from repro.experiments.base import ExperimentScale
from repro.experiments.bottleneck import figure8_shared_bottleneck, format_bottleneck
from repro.experiments.capacity import thinner_sink_capacity
from repro.experiments.cost import figure4_5_costs, format_costs
from repro.experiments.cross_traffic import figure9_cross_traffic, format_cross_traffic
from repro.experiments.heterogeneous import (
    figure6_bandwidth_heterogeneity,
    figure7_rtt_heterogeneity,
    format_categories,
)
from repro.metrics.tables import format_table


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds per run (paper: 600)")
    parser.add_argument("--client-scale", type=float, default=0.5,
                        help="fraction of the paper's client count to simulate (paper: 1.0)")
    parser.add_argument("--seed", type=int, default=0, help="root random seed")


def _scale_from(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(duration=args.duration, client_scale=args.client_scale, seed=args.seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="speakup-repro",
        description="Reproduction of 'DDoS Defense by Offense' (speak-up), SIGCOMM 2006",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run a small attacked-server demo")
    demo.add_argument("--good", type=int, default=5)
    demo.add_argument("--bad", type=int, default=5)
    demo.add_argument("--capacity", type=float, default=20.0)
    demo.add_argument("--duration", type=float, default=20.0)
    demo.add_argument("--defense", default="speakup",
                      choices=["speakup", "retry", "quantum", "none"])
    demo.add_argument("--seed", type=int, default=0)

    for name, help_text in [
        ("figure2", "allocation vs good-bandwidth fraction"),
        ("figure3", "allocation and served fraction across capacities"),
        ("costs", "figures 4 and 5: payment time and price"),
        ("figure6", "heterogeneous client bandwidths"),
        ("figure7", "heterogeneous client RTTs"),
        ("figure8", "good and bad clients sharing a bottleneck"),
        ("figure9", "impact on bystander HTTP downloads"),
        ("advantage", "section 7.4: empirical adversarial advantage"),
        ("windows", "section 7.4: bad-client window sweep"),
    ]:
        sub = subparsers.add_parser(name, help=help_text)
        _add_scale_arguments(sub)

    capacity = subparsers.add_parser("capacity", help="section 7.1: thinner sink-rate analogue")
    capacity.add_argument("--measure-seconds", type=float, default=0.5)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``speakup-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "demo":
        result = quick_demo(
            good_clients=args.good,
            bad_clients=args.bad,
            capacity_rps=args.capacity,
            duration=args.duration,
            defense=args.defense,
            seed=args.seed,
        )
        print(format_table(
            headers=["metric", "value"],
            rows=[(key, value) for key, value in result.as_dict().items()],
            title=f"Demo: {args.good} good + {args.bad} bad clients, defense={args.defense}",
        ))
        return 0

    if args.command == "capacity":
        results = thinner_sink_capacity(duration_seconds=args.measure_seconds)
        print(format_table(
            headers=["chunk_bytes", "Mbits_per_s", "chunks_per_s"],
            rows=[(r.chunk_bytes, r.mbits_per_second, r.chunks_per_second) for r in results],
            title="Section 7.1 analogue: payment accounting sink rate (Python hot path)",
        ))
        return 0

    scale = _scale_from(args)
    if args.command == "figure2":
        print(format_figure2(figure2_allocation(scale)))
    elif args.command == "figure3":
        print(format_figure3(figure3_provisioning(scale)))
    elif args.command == "costs":
        print(format_costs(figure4_5_costs(scale)))
    elif args.command == "figure6":
        print(format_categories(
            figure6_bandwidth_heterogeneity(scale), "bandwidth_Mbit",
            "Figure 6: allocation across bandwidth categories (all good clients)",
        ))
    elif args.command == "figure7":
        for client_class in ("good", "bad"):
            print(format_categories(
                figure7_rtt_heterogeneity(scale, client_class=client_class), "rtt_ms",
                f"Figure 7: allocation across RTT categories (all {client_class} clients)",
            ))
    elif args.command == "figure8":
        print(format_bottleneck(figure8_shared_bottleneck(scale)))
    elif args.command == "figure9":
        print(format_cross_traffic(figure9_cross_traffic(scale)))
    elif args.command == "advantage":
        outcome = empirical_adversarial_advantage(scale)
        print(format_table(
            headers=["metric", "value"],
            rows=[
                ("ideal capacity c_id (req/s)", outcome.ideal_capacity_rps),
                ("measured capacity (req/s)", outcome.measured_capacity_rps),
                ("adversarial advantage", outcome.advantage),
                ("served fraction at c_id", outcome.served_fraction_at_ideal),
            ],
            title="Section 7.4: empirical adversarial advantage (paper: 15%)",
        ))
    elif args.command == "windows":
        print(format_window_sweep(window_sweep(scale)))
    else:  # pragma: no cover - argparse enforces choices
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
