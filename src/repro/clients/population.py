"""Population builders for the standard experiment setups.

Every experiment in §7 uses some mix of good and bad clients over a list of
hosts built by a topology helper; these functions pair hosts with client
objects so the experiment modules stay short and declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.constants import (
    BAD_CLIENT_RATE,
    BAD_CLIENT_WINDOW,
    GOOD_CLIENT_RATE,
    GOOD_CLIENT_WINDOW,
)
from repro.errors import ClientError
from repro.clients.bad import BadClient
from repro.clients.base import BaseClient, DifficultySpec, RateModulator, RetryPolicy
from repro.clients.good import GoodClient
from repro.core.frontend import Deployment
from repro.simnet.host import Host


@dataclass
class PopulationSpec:
    """Parameters for one homogeneous group of clients."""

    count: int
    client_class: str = "good"          # "good" or "bad"
    rate_rps: Optional[float] = None     # defaults per class
    window: Optional[int] = None         # defaults per class
    category: Optional[str] = None
    difficulty: DifficultySpec = 1.0
    rate_modulator: Optional[RateModulator] = None
    #: Cohort-level override for the clients' arrival pregeneration chunk
    #: (``None`` keeps :data:`repro.clients.base.DEFAULT_ARRIVAL_BATCH`).
    arrival_batch: Optional[int] = None
    #: Cohort-level retry discipline for dropped uploads (``None`` keeps the
    #: historical fire-and-forget behaviour, bit for bit).
    retry_policy: Optional[RetryPolicy] = None

    def resolved_rate(self) -> float:
        if self.rate_rps is not None:
            return self.rate_rps
        return GOOD_CLIENT_RATE if self.client_class == "good" else BAD_CLIENT_RATE

    def resolved_window(self) -> int:
        if self.window is not None:
            return self.window
        return GOOD_CLIENT_WINDOW if self.client_class == "good" else BAD_CLIENT_WINDOW


def build_population(
    deployment: Deployment,
    hosts: Sequence[Host],
    specs: Sequence[PopulationSpec],
    client_factory: Optional[Callable[..., BaseClient]] = None,
) -> List[BaseClient]:
    """Instantiate clients over ``hosts`` according to ``specs`` (in order).

    The total count across specs must equal the number of hosts.  A custom
    ``client_factory`` (e.g. a cheating strategy) replaces the default
    good/bad classes for every spec.
    """
    total = sum(spec.count for spec in specs)
    if total != len(hosts):
        raise ClientError(
            f"specs ask for {total} clients but {len(hosts)} hosts were provided"
        )
    clients: List[BaseClient] = []
    host_iter = iter(hosts)
    for spec in specs:
        if client_factory is not None:
            factory = client_factory
        elif spec.client_class == "good":
            factory = GoodClient
        elif spec.client_class == "bad":
            factory = BadClient
        else:
            raise ClientError(f"unknown client class {spec.client_class!r}")
        kwargs = dict(
            rate_rps=spec.resolved_rate(),
            window=spec.resolved_window(),
            category=spec.category,
            difficulty=spec.difficulty,
        )
        # Only pass the modulator / batch override when set so custom
        # factories that predate the keywords keep working.
        if spec.rate_modulator is not None:
            kwargs["rate_modulator"] = spec.rate_modulator
        if spec.arrival_batch is not None:
            kwargs["arrival_batch"] = spec.arrival_batch
        if spec.retry_policy is not None:
            kwargs["retry_policy"] = spec.retry_policy
        for _ in range(spec.count):
            host = next(host_iter)
            clients.append(factory(deployment, host, **kwargs))
    return clients


def build_mixed_population(
    deployment: Deployment,
    hosts: Sequence[Host],
    good_count: int,
    bad_count: int,
    good_rate: float = GOOD_CLIENT_RATE,
    good_window: int = GOOD_CLIENT_WINDOW,
    bad_rate: float = BAD_CLIENT_RATE,
    bad_window: int = BAD_CLIENT_WINDOW,
    good_category: Optional[str] = None,
    bad_category: Optional[str] = None,
) -> List[BaseClient]:
    """The common case: ``good_count`` good clients then ``bad_count`` bad ones."""
    specs = []
    if good_count:
        specs.append(
            PopulationSpec(
                count=good_count,
                client_class="good",
                rate_rps=good_rate,
                window=good_window,
                category=good_category,
            )
        )
    if bad_count:
        specs.append(
            PopulationSpec(
                count=bad_count,
                client_class="bad",
                rate_rps=bad_rate,
                window=bad_window,
                category=bad_category,
            )
        )
    return build_population(deployment, hosts, specs)
