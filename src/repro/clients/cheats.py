"""Adversaries that game the auction's *timing* (§3.4).

Theorem 3.1 bounds how much an adversary can gain by choosing *when* its
bytes arrive rather than how many it sends: a client delivering an epsilon
fraction of the bandwidth always gets at least epsilon/2 of the service.
These client strategies exercise that bound empirically
(``benchmarks/bench_ablation_theorem31.py``):

* :class:`FocusedCheater` concentrates its whole uplink on one contending
  request at a time instead of spreading it across its window, hoping to win
  auctions sooner and recycle requests faster.
* :class:`LurkingCheater` delays the start of each payment channel, trying
  to pay only "at the last minute" and free-ride on periods when the going
  rate is low.
"""

from __future__ import annotations

from typing import List, Optional

from repro.constants import BAD_CLIENT_RATE, BAD_CLIENT_WINDOW
from repro.errors import ClientError
from repro.clients.base import BaseClient
from repro.core.frontend import Deployment
from repro.httpd.messages import Request, Response
from repro.simnet.host import Host


class FocusedCheater(BaseClient):
    """Pays for one request at a time with its full uplink."""

    def __init__(
        self,
        deployment: Deployment,
        host: Host,
        rate_rps: float = BAD_CLIENT_RATE,
        window: int = BAD_CLIENT_WINDOW,
        **kwargs,
    ) -> None:
        super().__init__(
            deployment,
            host,
            rate_rps=rate_rps,
            window=window,
            client_class="bad",
            **kwargs,
        )
        self._pending_encouragements: List[Request] = []
        self._focused: Optional[int] = None

    def on_encouraged(self, request: Request) -> None:
        if self._focused is None:
            self._focus(request)
        else:
            self._pending_encouragements.append(request)

    def _focus(self, request: Request) -> None:
        self._focused = request.request_id
        super().on_encouraged(request)

    def _refocus(self, finished: Request) -> None:
        if self._focused == finished.request_id:
            self._focused = None
            while self._pending_encouragements:
                candidate = self._pending_encouragements.pop(0)
                if candidate.is_outstanding:
                    self._focus(candidate)
                    break

    def on_response(self, request: Request, response: Response) -> None:
        super().on_response(request, response)
        self._refocus(request)

    def on_dropped(self, request: Request, reason: str) -> None:
        super().on_dropped(request, reason)
        self._refocus(request)


class LurkingCheater(BaseClient):
    """Waits ``lurk_delay`` seconds after each encouragement before paying."""

    def __init__(
        self,
        deployment: Deployment,
        host: Host,
        lurk_delay: float = 1.0,
        rate_rps: float = BAD_CLIENT_RATE,
        window: int = BAD_CLIENT_WINDOW,
        **kwargs,
    ) -> None:
        if lurk_delay < 0:
            raise ClientError("lurk_delay must be non-negative")
        super().__init__(
            deployment,
            host,
            rate_rps=rate_rps,
            window=window,
            client_class="bad",
            **kwargs,
        )
        self.lurk_delay = lurk_delay

    def on_encouraged(self, request: Request) -> None:
        if self.lurk_delay == 0:
            super().on_encouraged(request)
            return
        self.engine.schedule_after(self.lurk_delay, self._pay_if_still_waiting, request)

    def _pay_if_still_waiting(self, request: Request) -> None:
        if not request.is_outstanding or request.request_id in self.channels:
            return
        super().on_encouraged(request)
