"""The base workload client used for both good and bad populations.

A client generates requests from a Poisson process, keeps at most ``window``
of them outstanding, parks the rest in a backlog queue with a ten-second
service-denial timeout, sends each outstanding request to the thinner as a
small flow, opens a payment channel when encouraged, and records per-request
metrics when responses (or drops) come back.

Arrival generation is *batched*: instead of scheduling one engine event per
candidate arrival (and, for modulated demand, burning an event on every
thinned-away candidate), each client pregenerates a chunk of accepted
arrival times per refill — ``arrival_batch`` inter-arrival draws per RNG
call — and keeps a single pending engine event for the next accepted
arrival.  Thinning for non-homogeneous demand happens inside the refill
loop, so a mostly-idle client (a flash crowd before its flash, a pulsed
attacker between pulses) costs one *refill* event per
:data:`MAX_CANDIDATES_PER_REFILL` rejected candidates instead of one engine
event per candidate: engine event count no longer scales with idle clients.

Determinism contract: the refill loop consumes the client's random stream in
exactly the order the historical one-event-per-candidate scheduler did
(``gap, [accept], gap, [accept], ...``), and candidate times chain through
the same float expression (``t_next = t_prev + gap``), so runs are
bit-identical under a fixed seed.  The one exception is a *callable*
``difficulty`` spec: its draws must interleave with the arrival draws at
arrival time, so those clients keep the legacy per-event path.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Union

from repro.constants import REQUEST_TIMEOUT
from repro.errors import ClientError
from repro.core.frontend import Deployment
from repro.core.payment import PaymentChannel
from repro.httpd.messages import Request, RequestState, Response, new_request
from repro.simnet.host import Host

#: A request difficulty is either a constant or a draw from the client's RNG.
DifficultySpec = Union[float, Callable[["BaseClient"], float]]

#: A rate modulator maps simulated time to a demand multiplier in [0, 1];
#: ``rate_rps`` is then the client's *peak* rate and arrivals follow a
#: non-homogeneous Poisson process realised by thinning.  Modulators must be
#: *pure functions of the time argument* (every ArrivalSpec shape is): the
#: batched refill evaluates them at pre-computed future candidate times, so
#: one that read mutable simulation state or drew randomness would observe
#: it earlier than the legacy per-event scheduler did.
RateModulator = Callable[[float], float]

#: Accepted arrivals pregenerated per refill of a client's arrival queue.
DEFAULT_ARRIVAL_BATCH = 64

#: Bound on candidate draws per refill call.  A modulated client whose
#: multiplier sits at zero for a long stretch would otherwise pregenerate
#: (and buffer) arbitrarily far past the run horizon in one call; after this
#: many candidates the refill yields and resumes from an engine event at the
#: last candidate's time, preserving the engine's lazy time horizon.
MAX_CANDIDATES_PER_REFILL = 512


@dataclass(frozen=True)
class RetryPolicy:
    """How a client re-sends a request whose upload was aborted or dropped.

    Without a policy (the default), a dropped request is simply finalised
    as ``dropped`` — exactly the pre-retry behaviour, bit for bit.  With
    one, each drop may be retried after an exponential backoff with
    *decorrelated jitter* (``sleep = min(cap, uniform(base, prev * 3))``),
    subject to a per-request attempt cap and an optional per-client retry
    *budget*: a token bucket holding ``budget`` tokens that refills at
    ``refill_per_s``, each retry spending one token.  Budget-suppressed
    retries are counted in ``ClientStats.retries_suppressed`` — the knob
    the brownout experiment sweeps to show retry-storm mitigation.

    Frozen and JSON-round-trippable so scenario specs can carry and sweep
    it like any other field.
    """

    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    max_attempts: int = 4
    budget: Optional[float] = None
    refill_per_s: float = 0.0

    def validate(self) -> None:
        if self.base_backoff_s < 0:
            raise ClientError(
                f"base_backoff_s must be non-negative, got {self.base_backoff_s}"
            )
        if self.max_backoff_s < 0:
            raise ClientError(
                f"max_backoff_s must be non-negative, got {self.max_backoff_s}"
            )
        if self.max_attempts < 0:
            raise ClientError(f"max_attempts must be non-negative, got {self.max_attempts}")
        if self.budget is not None and self.budget < 0:
            raise ClientError(f"budget must be non-negative or None, got {self.budget}")
        if self.refill_per_s < 0:
            raise ClientError(f"refill_per_s must be non-negative, got {self.refill_per_s}")

    def backoff_delay(self, prev_s: float, rng) -> float:
        """The next backoff, by decorrelated jitter from the previous one.

        A zero ``max_backoff_s`` short-circuits to an immediate retry
        without consuming a random draw, so the naive policy stays cheap.
        """
        if self.max_backoff_s <= 0.0:
            return 0.0
        prev = prev_s if prev_s > 0.0 else self.base_backoff_s
        high = prev * 3.0
        if high < self.base_backoff_s:
            high = self.base_backoff_s
        return min(self.max_backoff_s, rng.uniform(self.base_backoff_s, high))

    # -- presets ---------------------------------------------------------------

    @classmethod
    def naive(cls, max_attempts: int = 8) -> "RetryPolicy":
        """Immediate unbudgeted retries: the retry-storm failure mode."""
        return cls(
            base_backoff_s=0.0,
            max_backoff_s=0.0,
            max_attempts=max_attempts,
            budget=None,
            refill_per_s=0.0,
        )

    @classmethod
    def budgeted(
        cls,
        budget: float = 1.0,
        refill_per_s: float = 0.05,
        max_attempts: int = 4,
    ) -> "RetryPolicy":
        """Jittered backoff with a token-bucket retry budget (the mitigation)."""
        return cls(
            base_backoff_s=0.05,
            max_backoff_s=2.0,
            max_attempts=max_attempts,
            budget=budget,
            refill_per_s=refill_per_s,
        )

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base_backoff_s": self.base_backoff_s,
            "max_backoff_s": self.max_backoff_s,
            "max_attempts": self.max_attempts,
            "budget": self.budget,
            "refill_per_s": self.refill_per_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RetryPolicy":
        budget = data.get("budget")
        return cls(
            base_backoff_s=float(data.get("base_backoff_s", 0.05)),
            max_backoff_s=float(data.get("max_backoff_s", 2.0)),
            max_attempts=int(data.get("max_attempts", 4)),
            budget=None if budget is None else float(budget),
            refill_per_s=float(data.get("refill_per_s", 0.0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "RetryPolicy":
        return cls.from_dict(json.loads(payload))


@dataclass
class ClientStats:
    """Counters and per-served-request samples for one client."""

    issued: int = 0
    sent: int = 0
    served: int = 0
    denied: int = 0            # backlog timeouts: the paper's "service denials"
    dropped: int = 0           # dropped/aborted by the thinner or server
    backlogged: int = 0
    retries_attempted: int = 0   # re-sends scheduled by the retry policy
    retries_suppressed: int = 0  # retries the token-bucket budget refused
    bytes_paid: float = 0.0
    payment_times: List[float] = field(default_factory=list)
    response_times: List[float] = field(default_factory=list)
    prices: List[float] = field(default_factory=list)

    @property
    def finished(self) -> int:
        """Requests with a final outcome."""
        return self.served + self.denied + self.dropped

    @property
    def served_fraction(self) -> float:
        """Fraction of finished requests that were served."""
        if self.finished == 0:
            return 0.0
        return self.served / self.finished


class BaseClient:
    """One workload client attached to a :class:`~repro.core.frontend.Deployment`."""

    def __init__(
        self,
        deployment: Deployment,
        host: Host,
        rate_rps: float,
        window: int,
        client_class: str = "good",
        category: Optional[str] = None,
        request_bytes: Optional[float] = None,
        backlog_timeout: float = REQUEST_TIMEOUT,
        difficulty: DifficultySpec = 1.0,
        rate_modulator: Optional[RateModulator] = None,
        arrival_batch: int = DEFAULT_ARRIVAL_BATCH,
        retry_policy: Optional[RetryPolicy] = None,
        auto_register: bool = True,
    ) -> None:
        if rate_rps <= 0:
            raise ClientError(f"rate_rps must be positive, got {rate_rps}")
        if window < 1:
            raise ClientError(f"window must be at least 1, got {window}")
        if backlog_timeout <= 0:
            raise ClientError("backlog_timeout must be positive")
        if arrival_batch < 1:
            raise ClientError(f"arrival_batch must be at least 1, got {arrival_batch}")
        self.deployment = deployment
        self.engine = deployment.engine
        self.network = deployment.network
        #: The thinner shard serving this client (always 0 outside fleet
        #: deployments); requests, payment channels, and responses all flow
        #: through the shard's own thinner host.
        self.shard = deployment.assign_shard(host)
        self.thinner = deployment.thinners[self.shard]
        self.thinner_host = deployment.thinner_hosts[self.shard]
        self.host = host
        self.rate_rps = float(rate_rps)
        self.window = int(window)
        self.client_class = client_class
        self.category = category
        self.request_bytes = (
            request_bytes if request_bytes is not None else deployment.config.request_bytes
        )
        self.backlog_timeout = backlog_timeout
        self.difficulty = difficulty
        self.rate_modulator = rate_modulator
        self.rng = deployment.client_stream(host.name)
        self.stats = ClientStats()

        self.outstanding = 0
        self.backlog: Deque[Request] = deque()
        self.channels: Dict[int, PaymentChannel] = {}
        self._started = False
        self._sweep_event = None
        #: Request uploads still on the wire (request_id -> (request, flow)),
        #: so a shard kill can abort them with correct accounting.
        self._inflight: Dict[int, tuple] = {}
        #: True between the pinned shard's kill and this client's re-pin;
        #: while set, new arrivals back up in the backlog (and may be denied
        #: by the normal sweep) instead of being sent to a dead front-end.
        self._shard_down = False

        #: Retry discipline for aborted/dropped uploads.  ``None`` (the
        #: default) preserves the pre-retry behaviour bit for bit: no extra
        #: random stream is created, no state is kept, drops finalise
        #: immediately.
        if retry_policy is not None:
            retry_policy.validate()
        self.retry_policy = retry_policy
        #: request_id -> (attempts so far, previous backoff) while a request
        #: is being retried; request_id -> (request, timer event) while one
        #: is waiting out a backoff (still counted ``outstanding``).
        self._retry_state: Dict[int, tuple] = {}
        self._retry_pending: Dict[int, tuple] = {}
        self._retry_rng = (
            deployment.streams.stream(f"retry:{host.name}")
            if retry_policy is not None
            else None
        )
        self._retry_tokens = (
            retry_policy.budget
            if retry_policy is not None and retry_policy.budget is not None
            else 0.0
        )
        self._retry_refill_time = 0.0

        #: Pregenerated accepted arrival times, oldest first.
        self.arrival_batch = int(arrival_batch)
        self._pending_arrivals: Deque[float] = deque()
        #: Simulated time of the last *candidate* drawn (accepted or thinned);
        #: the next refill chains its first gap from here.
        self._gen_time = 0.0
        #: Callable difficulty draws must interleave with arrival draws, so
        #: those clients keep the legacy one-event-per-candidate scheduler
        #: (see the module docstring's determinism contract).
        self._batched_arrivals = not callable(difficulty)

        if auto_register:
            deployment.register_client(self)

    # -- identity ----------------------------------------------------------------

    @property
    def name(self) -> str:
        """The client's name (its host's name)."""
        return self.host.name

    @property
    def upload_bandwidth_bps(self) -> float:
        """The client's access uplink capacity — its speak-up wealth."""
        return self.host.upload_capacity_bps

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Begin generating requests (idempotent; called by ``Deployment.run``)."""
        if self._started:
            return
        self._started = True
        self._gen_time = self.engine.now
        self._schedule_next_arrival()

    # -- batched arrival pregeneration ---------------------------------------------

    def _refill_arrivals(self) -> None:
        """Pregenerate accepted arrival times, up to ``arrival_batch`` of them.

        Draw order and float arithmetic replicate the legacy per-event
        scheduler exactly: each candidate time is ``previous + gap`` with
        ``gap`` exponential at the peak rate, immediately followed (for
        modulated demand) by the thinning accept draw at that candidate time.
        Pregeneration also stops once it crosses the engine's advisory run
        horizon — draws the legacy scheduler would only have made in a later
        ``run()`` are deferred to a later refill, so a short run never pays
        for (or buffers) a long batch of post-horizon arrivals.  Stopping
        early at *any* prefix is exact: the stream is consumed in the same
        order either way.
        """
        rng = self.rng
        rate = self.rate_rps
        modulator = self.rate_modulator
        pending = self._pending_arrivals
        horizon = self.engine.run_horizon
        t = self._gen_time
        if modulator is None:
            batch = self.arrival_batch
            # Draw in small chunks so at most a chunk's worth of gaps is
            # pregenerated beyond the horizon (chained gaps already drawn
            # stay valid arrival times for a later run).
            chunk = batch if horizon is None else min(batch, 8)
            while True:
                for gap in rng.exponentials(rate, chunk):
                    t = t + gap
                    pending.append(t)
                if len(pending) >= batch or (horizon is not None and t > horizon):
                    break
        else:
            exponential = rng.exponential
            bernoulli = rng.bernoulli
            accepted = 0
            for _ in range(MAX_CANDIDATES_PER_REFILL):
                t = t + exponential(rate)
                # Thinning (Lewis & Shedler): draw candidates at the peak
                # rate and accept each with probability equal to the
                # multiplier at the candidate's (pre-computed) arrival time.
                multiplier = min(1.0, max(0.0, modulator(t)))
                if bernoulli(multiplier):
                    pending.append(t)
                    accepted += 1
                    if accepted >= self.arrival_batch:
                        break
                if horizon is not None and t > horizon:
                    break
        self._gen_time = t

    def _schedule_next_arrival(self) -> None:
        if not self._batched_arrivals:
            gap = self.rng.exponential(self.rate_rps)
            self.engine.schedule_after(gap, self._legacy_arrival)
            return
        pending = self._pending_arrivals
        if not pending:
            self._refill_arrivals()
        if pending:
            self.engine.schedule_at(pending.popleft(), self._arrival)
        else:
            # Every candidate in the refill was thinned away (deep idle):
            # resume generation when the clock reaches the last candidate,
            # one event per MAX_CANDIDATES_PER_REFILL candidates.
            self.engine.schedule_at(self._gen_time, self._schedule_next_arrival)

    def _arrival(self) -> None:
        request = new_request(
            client_id=self.name,
            issued_at=self.engine.now,
            client_class=self.client_class,
            category=self.category,
            difficulty=self._draw_difficulty(),
            size_bytes=self.request_bytes,
        )
        self.stats.issued += 1
        if self.outstanding < self.window and not self._shard_down:
            self._issue(request)
        else:
            request.state = RequestState.BACKLOGGED
            self.backlog.append(request)
            self.stats.backlogged += 1
            self._ensure_sweep()
        self._schedule_next_arrival()

    def _legacy_arrival(self) -> None:
        """One-event-per-candidate arrival (callable-difficulty clients only)."""
        if self.rate_modulator is not None:
            multiplier = min(1.0, max(0.0, self.rate_modulator(self.engine.now)))
            if not self.rng.bernoulli(multiplier):
                self._schedule_next_arrival()
                return
        self._arrival()

    def _draw_difficulty(self) -> float:
        if callable(self.difficulty):
            return float(self.difficulty(self))
        return float(self.difficulty)

    # -- sending a request ---------------------------------------------------------

    def _issue(self, request: Request) -> None:
        self.outstanding += 1
        self._send_upload(request)

    def _send_upload(self, request: Request) -> None:
        """One upload attempt: ``_issue`` for fresh requests, re-entered by
        the retry machinery for backed-off ones (already outstanding)."""
        self.stats.sent += 1
        request.state = RequestState.SENT
        request.sent_at = self.engine.now
        flow = self.network.send(
            self.host,
            self.thinner_host,
            size_bytes=request.size_bytes,
            label=f"request:{request.request_id}",
            on_complete=lambda _flow: self._request_delivered(request),
        )
        self._inflight[request.request_id] = (request, flow)

    def _request_delivered(self, request: Request) -> None:
        self._inflight.pop(request.request_id, None)
        injector = self.deployment.fault_injector
        if injector is not None and injector.upload_lost(self.shard):
            # The ``lossy`` gray failure: the upload completed but the
            # shard lost it.  The client learns via the usual drop path
            # (connection reset after one propagation delay), where the
            # retry policy, if any, takes over.
            request.state = RequestState.DROPPED
            request.drop_reason = "fault-loss"
            delay = self.network.topology.one_way_delay(self.thinner_host, self.host)
            self.engine.schedule_after(delay, self.on_dropped, request, "fault-loss")
            return
        self.thinner.receive_request(request, self)

    # -- thinner callbacks ------------------------------------------------------------

    def on_encouraged(self, request: Request) -> None:
        """The thinner asked for payment: open a payment channel."""
        if request.request_id in self.channels:
            return
        channel = self.deployment.payment_channel(
            self.host, request, thinner_host=self.thinner_host
        )
        self.channels[request.request_id] = channel
        channel.open()
        self.thinner.register_payment(request, channel)

    def on_response(self, request: Request, response: Response) -> None:
        """The server finished the request."""
        self._forget_channel(request)
        self.outstanding -= 1
        self.stats.served += 1
        self.stats.bytes_paid += request.bytes_paid
        payment_time = request.payment_time()
        response_time = request.response_time()
        telemetry = getattr(self.deployment, "telemetry", None)
        if telemetry is None:
            # Full mode: the historical unbounded per-request lists, kept
            # byte-identical for every pinned figure/sweep fingerprint.
            self.stats.prices.append(request.price_paid)
            if payment_time is not None:
                self.stats.payment_times.append(payment_time)
            if response_time is not None:
                self.stats.response_times.append(response_time)
        else:
            telemetry.record_served(
                self.client_class,
                self.engine.now,
                payment_time,
                response_time,
                request.price_paid,
            )
        if self._retry_state:
            self._retry_state.pop(request.request_id, None)
        self._drain_backlog()

    def on_dropped(self, request: Request, reason: str) -> None:
        """The thinner or server abandoned the request."""
        self._forget_channel(request)
        if self._maybe_retry(request):
            return  # still outstanding; a backoff timer owns it now
        self.outstanding -= 1
        self.stats.dropped += 1
        self.stats.bytes_paid += request.bytes_paid
        if self._retry_state:
            self._retry_state.pop(request.request_id, None)
        self._drain_backlog()

    # -- retry machinery (active only with a RetryPolicy) ---------------------------

    def _maybe_retry(self, request: Request) -> bool:
        """Schedule a re-send of a dropped request if the policy allows one.

        Returns True when a backoff timer was armed — the request stays
        ``outstanding`` throughout, so the accounting identity (issued ==
        served + denied + dropped + outstanding + backlog) is untouched.
        """
        policy = self.retry_policy
        if policy is None or self._shard_down:
            return False
        attempts, prev_backoff = self._retry_state.get(request.request_id, (0, 0.0))
        if attempts >= policy.max_attempts:
            return False
        if policy.budget is not None:
            self._refill_retry_tokens()
            if self._retry_tokens < 1.0:
                self.stats.retries_suppressed += 1
                return False
            self._retry_tokens -= 1.0
        delay = policy.backoff_delay(prev_backoff, self._retry_rng)
        self._retry_state[request.request_id] = (attempts + 1, delay)
        self.stats.retries_attempted += 1
        # Bank this attempt's payment now; the next attempt's channel close
        # overwrites request.bytes_paid, so without this the earlier
        # attempt's spend would vanish from the client's accounting.
        self.stats.bytes_paid += request.bytes_paid
        request.bytes_paid = 0.0
        event = self.engine.schedule_after(delay, self._retry_fire, request)
        self._retry_pending[request.request_id] = (request, event)
        return True

    def _refill_retry_tokens(self) -> None:
        policy = self.retry_policy
        now = self.engine.now
        elapsed = now - self._retry_refill_time
        if elapsed > 0.0 and policy.refill_per_s > 0.0:
            self._retry_tokens = min(
                policy.budget, self._retry_tokens + elapsed * policy.refill_per_s
            )
        self._retry_refill_time = now

    def _retry_fire(self, request: Request) -> None:
        self._retry_pending.pop(request.request_id, None)
        if self._shard_down:
            # The shard died while this request waited out its backoff and
            # the kill path could not see it; finalise it as dropped here.
            self.outstanding -= 1
            self.stats.dropped += 1
            self.stats.bytes_paid += request.bytes_paid
            self._retry_state.pop(request.request_id, None)
            return
        self._send_upload(request)

    # -- backlog management --------------------------------------------------------------
    #
    # Backlogged requests time out ``backlog_timeout`` seconds after they were
    # issued (the paper's 10-second service denial).  Rather than one timer per
    # request — bad clients would schedule a thousand timers a second — each
    # client keeps a single sweep event armed for the head of its backlog; the
    # backlog is FIFO so heads expire in order.

    def _ensure_sweep(self) -> None:
        if self._sweep_event is not None and self._sweep_event.pending:
            return
        if not self.backlog:
            return
        head = self.backlog[0]
        deadline = head.issued_at + self.backlog_timeout
        delay = max(0.0, deadline - self.engine.now)
        self._sweep_event = self.engine.schedule_after(delay, self._sweep_backlog)

    def _sweep_backlog(self) -> None:
        self._sweep_event = None
        now = self.engine.now
        # The expiry test must use exactly the same expression as the re-arm
        # delay below (issued_at + timeout vs. now); mixing the algebraically
        # equivalent "now - issued_at >= timeout" can disagree with it in the
        # last floating-point bit and re-arm a zero-delay sweep forever.
        while self.backlog and self.backlog[0].issued_at + self.backlog_timeout <= now:
            request = self.backlog.popleft()
            self._deny(request)
        self._ensure_sweep()

    def _deny(self, request: Request) -> None:
        # A request that already reached a terminal state (e.g. aborted by a
        # shard kill landing exactly on this deadline tick) was counted once
        # under that outcome; denying it again would double-count it and
        # break the accounting identity, so the deny is a no-op.
        if request.state in (RequestState.DROPPED, RequestState.DENIED):
            return
        request.state = RequestState.DENIED
        request.denied_at = self.engine.now
        self.stats.denied += 1

    def _drain_backlog(self) -> None:
        if self._shard_down:
            return  # nothing to send to until the re-pin lands
        while self.backlog and self.outstanding < self.window:
            request = self.backlog.popleft()
            if request.issued_at + self.backlog_timeout <= self.engine.now:
                self._deny(request)
                continue
            self._issue(request)

    def _forget_channel(self, request: Request) -> None:
        channel = self.channels.pop(request.request_id, None)
        if channel is not None and channel.is_open:
            channel.close()

    # -- failover (driven by the fault injector) -------------------------------------

    def shard_failed(self) -> int:
        """The pinned shard's front-end died: abort in-flight uploads.

        Request uploads still on the wire are stopped (the connection
        resets), counted as dropped, and reported back as orphans; requests
        already contending at the thinner are dropped by the thinner itself,
        so this method must not touch them.  The client stops issuing until
        :meth:`repin` retargets it.
        """
        self._shard_down = True
        orphaned = 0
        for request, flow in self._inflight.values():
            self.network.stop_flow(flow)
            request.state = RequestState.DROPPED
            request.drop_reason = "shard-killed"
            self.outstanding -= 1
            self.stats.dropped += 1
            orphaned += 1
        self._inflight.clear()
        # Requests waiting out a retry backoff are equally orphaned: cancel
        # their timers and finalise them, or they would re-send to the dead
        # shard (or leak from ``outstanding``) after the re-pin.
        if self._retry_pending:
            for request, event in self._retry_pending.values():
                event.cancel()
                request.state = RequestState.DROPPED
                request.drop_reason = "shard-killed"
                self.outstanding -= 1
                self.stats.dropped += 1
                orphaned += 1
            self._retry_pending.clear()
        if self._retry_state:
            self._retry_state.clear()
        return orphaned

    def repin(self, shard: int) -> None:
        """Re-resolve to a surviving shard and resume issuing.

        Called by the fault injector once this client's DNS-TTL re-pin lag
        expires.  Backlogged arrivals drain immediately (minus any the
        10-second denial sweep already expired).
        """
        self.shard = shard
        self.thinner = self.deployment.thinners[shard]
        self.thinner_host = self.deployment.thinner_hosts[shard]
        self._shard_down = False
        self._drain_backlog()

    # -- end-of-run accounting ---------------------------------------------------------------

    def open_payment_bytes(self) -> float:
        """Bytes delivered on channels still open (work in progress at run end)."""
        return sum(channel.total_paid() for channel in self.channels.values())

    def total_bytes_spent(self) -> float:
        """All payment bytes this client delivered during the run."""
        return self.stats.bytes_paid + self.open_payment_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name}, class={self.client_class}, "
            f"rate={self.rate_rps}/s, window={self.window})"
        )
