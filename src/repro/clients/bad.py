"""Bad clients: the attacking population.

§7.1: "A bad client, by definition, tries to capture more than its fair
share.  We model this intent as follows: bad clients send requests faster
than good clients, and bad clients send requests concurrently.  Specifically
we choose lambda = 40, w = 20 for bad clients."  Keeping twenty requests
outstanding means twenty concurrent payment channels, so a bad client's
uplink never goes quiescent — the empirical source of the (bounded)
adversarial advantage measured in §7.4.
"""

from __future__ import annotations

from typing import Optional

from repro.constants import BAD_CLIENT_RATE, BAD_CLIENT_WINDOW
from repro.clients.base import BaseClient, DifficultySpec
from repro.core.frontend import Deployment
from repro.simnet.host import Host


class BadClient(BaseClient):
    """An attacker-controlled client (defaults: ``lambda = 40`` req/s, window 20)."""

    def __init__(
        self,
        deployment: Deployment,
        host: Host,
        rate_rps: float = BAD_CLIENT_RATE,
        window: int = BAD_CLIENT_WINDOW,
        category: Optional[str] = None,
        difficulty: DifficultySpec = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(
            deployment,
            host,
            rate_rps=rate_rps,
            window=window,
            client_class="bad",
            category=category,
            difficulty=difficulty,
            **kwargs,
        )
