"""Good clients: the legitimate clientele.

§7.1: good clients issue requests from a Poisson process of rate
``lambda = 2`` per second and keep at most one request outstanding.  Because
they spend most of their time quiescent, they have plenty of spare upload
bandwidth — which is exactly the asymmetry speak-up exploits.
"""

from __future__ import annotations

from typing import Optional

from repro.constants import GOOD_CLIENT_RATE, GOOD_CLIENT_WINDOW
from repro.clients.base import BaseClient, DifficultySpec
from repro.core.frontend import Deployment
from repro.simnet.host import Host


class GoodClient(BaseClient):
    """A legitimate client (defaults: ``lambda = 2`` req/s, window 1)."""

    def __init__(
        self,
        deployment: Deployment,
        host: Host,
        rate_rps: float = GOOD_CLIENT_RATE,
        window: int = GOOD_CLIENT_WINDOW,
        category: Optional[str] = None,
        difficulty: DifficultySpec = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(
            deployment,
            host,
            rate_rps=rate_rps,
            window=window,
            client_class="good",
            category=category,
            difficulty=difficulty,
            **kwargs,
        )
