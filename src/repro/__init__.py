"""repro — a reproduction of "DDoS Defense by Offense" (speak-up), SIGCOMM 2006.

The package is organised as:

* :mod:`repro.simnet` — the discrete-event fluid network simulator substrate;
* :mod:`repro.httpd` — request/response messages, the emulated server, and
  the §7.7 download model;
* :mod:`repro.core` — the speak-up thinner variants (virtual auction,
  aggressive retries, per-quantum auctions) and the Deployment wiring;
* :mod:`repro.clients` — good/bad/cheating workload clients;
* :mod:`repro.defenses` — baseline defenses for comparison;
* :mod:`repro.analysis` — the paper's closed-form results;
* :mod:`repro.metrics` — run metrics, summaries, table rendering;
* :mod:`repro.scenarios` — scenarios as frozen data (:class:`ScenarioSpec`),
  the named registry, and the parallel sweep runner + results store;
* :mod:`repro.experiments` — one module per table/figure of the evaluation,
  each expressed as a scenario grid;
* :mod:`repro.perf` — hot-path counters and the tracked benchmark suite
  behind ``BENCH_speakup.json``;
* :mod:`repro.cli` — command-line access to the experiments.

See ``docs/ARCHITECTURE.md`` for the full map tied to the paper's sections.

Quickstart::

    from repro import quick_demo
    result = quick_demo()
    print(result.good_allocation, result.ideal_good_allocation)
"""

from repro.core.frontend import Deployment, DeploymentConfig
from repro.core.auction import VirtualAuctionThinner
from repro.core.retry import RandomDropThinner
from repro.core.quantum import QuantumAuctionThinner
from repro.core.admission import NoDefenseThinner
from repro.core.payment import PaymentChannel
from repro.clients.good import GoodClient
from repro.clients.bad import BadClient
from repro.metrics.collector import RunResult

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "DeploymentConfig",
    "VirtualAuctionThinner",
    "RandomDropThinner",
    "QuantumAuctionThinner",
    "NoDefenseThinner",
    "PaymentChannel",
    "GoodClient",
    "BadClient",
    "RunResult",
    "quick_demo",
    "__version__",
]


def quick_demo(
    good_clients: int = 5,
    bad_clients: int = 5,
    capacity_rps: float = 20.0,
    duration: float = 20.0,
    defense: str = "speakup",
    seed: int = 0,
) -> RunResult:
    """Run a small attacked-server scenario and return its metrics.

    This is the two-minute tour: a handful of good and bad clients on a LAN,
    an under-provisioned server, and the defense of your choice in front of
    it.  See :mod:`repro.experiments` for the paper's actual experiments.
    """
    from repro.clients.population import build_mixed_population
    from repro.constants import DEFAULT_CLIENT_BANDWIDTH
    from repro.simnet.topology import build_lan, uniform_bandwidths

    topology, hosts, thinner_host = build_lan(
        uniform_bandwidths(good_clients + bad_clients, DEFAULT_CLIENT_BANDWIDTH)
    )
    deployment = Deployment(
        topology,
        thinner_host,
        DeploymentConfig(server_capacity_rps=capacity_rps, defense=defense, seed=seed),
    )
    build_mixed_population(deployment, hosts, good_clients, bad_clients)
    deployment.run(duration)
    return deployment.results()
