"""Declarative telemetry configuration.

:class:`TelemetrySpec` rides on :class:`~repro.scenarios.spec.ScenarioSpec`
exactly like the other optional sub-specs (``fault_plan``, ``retry_policy``,
``router_spec``): frozen, JSON round-trippable, sweepable through
``with_value`` paths such as ``telemetry.reservoir``, and omitted from
serialised specs when unset so every stored results file from earlier PRs
stays byte-compatible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ExperimentError

TELEMETRY_MODES = ("full", "rollup")

#: Bounded per-bucket state: count, sum, min, max plus two P² sketches of
#: five markers each (height + position + desired-position + increment per
#: marker, and the sketch's own count).  Used by ``footprint_budget`` so the
#: budget is an audited constant, not a hand-wave.
BUCKET_SLOTS = 4 + 2 * (4 * 5 + 1)


@dataclass(frozen=True)
class TelemetrySpec:
    """How a run measures itself.

    ``mode``
        ``"full"`` keeps the historical unbounded per-request lists and is
        byte-identical to a run with no telemetry spec at all; ``"rollup"``
        switches every per-request list to bounded streaming state.
    ``reservoir``
        Capacity of each fixed-size reservoir sampler (Algorithm R, seeded
        off the dedicated ``"telemetry"`` RNG stream).  With ``count <=
        reservoir`` the reservoir holds every sample, so small runs report
        exact percentiles.
    ``bucket_s``
        Width of the time-bucketed rollup aggregates, in simulated seconds.
    ``max_buckets``
        Hard cap on buckets per series; samples past the cap fold into the
        last bucket so a runaway duration cannot grow memory.
    """

    mode: str = "rollup"
    reservoir: int = 512
    bucket_s: float = 1.0
    max_buckets: int = 4096

    def validate(self) -> None:
        if self.mode not in TELEMETRY_MODES:
            raise ExperimentError(
                f"telemetry mode must be one of {TELEMETRY_MODES}, got {self.mode!r}"
            )
        if self.reservoir < 1:
            raise ExperimentError(f"telemetry reservoir must be >= 1, got {self.reservoir}")
        if self.bucket_s <= 0:
            raise ExperimentError(f"telemetry bucket_s must be > 0, got {self.bucket_s}")
        if self.max_buckets < 1:
            raise ExperimentError(f"telemetry max_buckets must be >= 1, got {self.max_buckets}")

    def buckets_for(self, duration: float) -> int:
        """How many buckets a ``duration``-second run can populate."""
        if duration <= 0:
            return 1
        return min(self.max_buckets, int(math.ceil(duration / self.bucket_s)) + 1)

    def footprint_budget(self, duration: float, shards: int = 1) -> int:
        """Upper bound on retained measurement slots for one run.

        The budget is O(buckets + reservoir) and independent of request
        count: per class (good/bad) the collector keeps three stream
        accumulators (payment, response, price), each a reservoir plus
        O(1) moments, plus two bucketed series; each thinner shard keeps
        one streaming price book bounded by a reservoir.  Tests assert
        ``collector.footprint_records() <= spec.footprint_budget(...)``.
        """
        classes = 2
        streams_per_class = 3
        accumulator_slots = classes * streams_per_class * (self.reservoir + 8)
        bucket_series = classes * 2
        bucket_slots = bucket_series * self.buckets_for(duration) * BUCKET_SLOTS
        price_book_slots = max(1, shards) * (self.reservoir + 16)
        return accumulator_slots + bucket_slots + price_book_slots

    def with_mode(self, mode: str) -> "TelemetrySpec":
        return replace(self, mode=mode)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "reservoir": self.reservoir,
            "bucket_s": self.bucket_s,
            "max_buckets": self.max_buckets,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySpec":
        if not isinstance(data, dict):
            raise ExperimentError(f"telemetry spec must be an object, got {type(data).__name__}")
        known = {"mode", "reservoir", "bucket_s", "max_buckets"}
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(f"unknown telemetry spec keys: {sorted(unknown)}")
        spec = cls(
            mode=str(data.get("mode", "rollup")),
            reservoir=int(data.get("reservoir", 512)),
            bucket_s=float(data.get("bucket_s", 1.0)),
            max_buckets=int(data.get("max_buckets", 4096)),
        )
        spec.validate()
        return spec
