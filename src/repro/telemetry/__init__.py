"""Memory-bounded measurement plane.

Two collection modes, selected per scenario by a
:class:`~repro.telemetry.spec.TelemetrySpec` on the scenario spec:

* ``full`` (the default, and the behaviour when no spec is set) keeps the
  historical per-request lists and is byte-identical to the collector the
  repo has always had;
* ``rollup`` replaces every unbounded list with fixed-size reservoir
  samplers plus time-bucketed aggregates, so a run's measurement footprint
  is O(buckets + reservoir) regardless of how many requests it serves.

The collector classes are re-exported lazily (PEP 562): the spec must stay
importable from the bottom ``core`` layer without dragging in
:mod:`repro.telemetry.collector` (which itself imports ``core.pricing``).
"""

from repro.telemetry.spec import TelemetrySpec

_COLLECTOR_EXPORTS = (
    "P2Quantile",
    "ReservoirSampler",
    "StreamAccumulator",
    "StreamingPriceBook",
    "TelemetryCollector",
    "TelemetryMetrics",
    "TimeBuckets",
)

__all__ = ["TelemetrySpec", *_COLLECTOR_EXPORTS]


def __getattr__(name: str):
    if name in _COLLECTOR_EXPORTS:
        from repro.telemetry import collector

        return getattr(collector, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
