"""Streaming, memory-bounded collectors for the rollup telemetry mode.

Everything in this module holds O(1) or O(reservoir + buckets) state no
matter how many samples flow through it:

* :class:`ReservoirSampler` — Vitter's Algorithm R over the dedicated
  ``"telemetry"`` RNG stream, so the retained sample is a deterministic
  function of (seed, sample order) and identical across process boundaries;
* :class:`P2Quantile` — the Jain/Chlamtac P² streaming quantile estimator
  (five markers, no RNG, exact below five observations);
* :class:`StreamAccumulator` — exact count/sum/min/max + Welford variance,
  reservoir-backed percentiles, rendered as a
  :class:`~repro.metrics.summary.Summary` (with p99.9);
* :class:`TimeBuckets` — per-bucket count/sum/min/max plus P² sketches,
  folding past ``max_buckets`` into the last bucket;
* :class:`TelemetryCollector` — the per-deployment façade the client layer
  records into instead of appending to ``ClientStats`` lists;
* :class:`StreamingPriceBook` — a bounded drop-in for
  :class:`~repro.core.pricing.PriceBook`: exact per-class sums, counts,
  revenue, zero-price count and going rate, with a reservoir of
  :class:`~repro.core.pricing.PriceSample` backing the distributional
  queries (percentile / history / samples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.pricing import PriceSample
from repro.metrics.summary import Summary, percentile

CLIENT_CLASSES = ("good", "bad")
STREAM_NAMES = ("payment", "response", "price")
BUCKET_METRICS = ("payment", "response")


class ReservoirSampler:
    """Fixed-size uniform sample of an unbounded stream (Algorithm R)."""

    __slots__ = ("capacity", "rng", "count", "_samples")

    def __init__(self, capacity: int, rng) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.rng = rng
        self.count = 0
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self.rng.randint(0, self.count - 1)
        if slot < self.capacity:
            self._samples[slot] = value

    @property
    def samples(self) -> List[float]:
        """The retained sample, in retention order (a copy)."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)


class P2Quantile:
    """Jain/Chlamtac P² single-quantile estimator.

    Deterministic (no RNG): five markers track the running quantile with
    parabolic interpolation.  Below five observations the estimate is the
    exact nearest-rank percentile of what has been seen.
    """

    __slots__ = ("fraction", "count", "_initial", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        self.fraction = fraction
        self.count = 0
        self._initial: Optional[List[float]] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._rates: List[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        if self._initial is not None:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._heights = sorted(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                p = self.fraction
                self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
                self._rates = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
                self._initial = None
            return

        heights = self._heights
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._rates[index]
        for index in (1, 2, 3):
            delta = self._desired[index] - positions[index]
            if (delta >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                delta <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        span = positions[index + 1] - positions[index - 1]
        upper = (positions[index] - positions[index - 1] + step) * (
            heights[index + 1] - heights[index]
        ) / (positions[index + 1] - positions[index])
        lower = (positions[index + 1] - positions[index] - step) * (
            heights[index] - heights[index - 1]
        ) / (positions[index] - positions[index - 1])
        return heights[index] + (step / span) * (upper + lower)

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        neighbour = index + int(step)
        return heights[index] + step * (heights[neighbour] - heights[index]) / (
            positions[neighbour] - positions[index]
        )

    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        if self._initial is not None:
            if not self._initial:
                return 0.0
            return percentile(self._initial, self.fraction)
        return self._heights[2]


class StreamAccumulator:
    """Exact moments + reservoir percentiles for one sample stream."""

    __slots__ = ("count", "total", "minimum", "maximum", "_m2", "_mean", "reservoir")

    def __init__(self, capacity: int, rng) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._mean = 0.0
        self._m2 = 0.0
        self.reservoir = ReservoirSampler(capacity, rng)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.reservoir.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))

    def summary(self) -> Summary:
        """A :class:`Summary` with exact moments and reservoir percentiles.

        With ``count <= capacity`` the reservoir holds every sample and the
        percentiles are exact; past capacity they are the uniform-sample
        estimate (documented tolerance, not byte-identity).
        """
        if not self.count:
            return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, p999=0.0)
        ordered = sorted(self.reservoir.samples)
        return Summary(
            count=self.count,
            mean=self.mean,
            stddev=self.stddev,
            minimum=self.minimum,
            maximum=self.maximum,
            p50=percentile(ordered, 0.50),
            p90=percentile(ordered, 0.90),
            p99=percentile(ordered, 0.99),
            p999=percentile(ordered, 0.999),
        )

    def footprint_records(self) -> int:
        return len(self.reservoir) + 8


class TimeBuckets:
    """Time-bucketed rollup aggregates for one sample stream."""

    __slots__ = ("bucket_s", "max_buckets", "_buckets")

    def __init__(self, bucket_s: float, max_buckets: int) -> None:
        self.bucket_s = bucket_s
        self.max_buckets = max_buckets
        # bucket index -> [count, total, minimum, maximum, p50 sketch, p99 sketch]
        self._buckets: Dict[int, list] = {}

    def add(self, now: float, value: float) -> None:
        index = int(now // self.bucket_s)
        if index not in self._buckets and len(self._buckets) >= self.max_buckets:
            index = max(self._buckets)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = [0, 0.0, math.inf, -math.inf, P2Quantile(0.50), P2Quantile(0.99)]
            self._buckets[index] = bucket
        bucket[0] += 1
        bucket[1] += value
        if value < bucket[2]:
            bucket[2] = value
        if value > bucket[3]:
            bucket[3] = value
        bucket[4].add(value)
        bucket[5].add(value)

    def rows(self) -> List[List[float]]:
        """Sorted ``[start_s, count, total, min, max, p50, p99]`` rows."""
        out = []
        for index in sorted(self._buckets):
            count, total, minimum, maximum, p50, p99 = self._buckets[index]
            out.append(
                [index * self.bucket_s, count, total, minimum, maximum, p50.value(), p99.value()]
            )
        return out

    def __len__(self) -> int:
        return len(self._buckets)

    def footprint_records(self) -> int:
        from repro.telemetry.spec import BUCKET_SLOTS

        return len(self._buckets) * BUCKET_SLOTS


@dataclass(frozen=True)
class TelemetryMetrics:
    """The serialisable footprint-bounded measurement result of one run.

    Attached to :class:`~repro.metrics.collector.RunResult` as an optional
    field (omitted in full mode, so full-mode results stay byte-identical
    to the historical collector).
    """

    mode: str
    reservoir: int
    bucket_s: float
    samples: int
    retained: int
    buckets: Dict[str, Dict[str, List[List[float]]]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "reservoir": self.reservoir,
            "bucket_s": self.bucket_s,
            "samples": self.samples,
            "retained": self.retained,
            "buckets": {
                cls: {metric: [list(row) for row in rows] for metric, rows in metrics.items()}
                for cls, metrics in self.buckets.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryMetrics":
        return cls(
            mode=str(data.get("mode", "rollup")),
            reservoir=int(data.get("reservoir", 0)),
            bucket_s=float(data.get("bucket_s", 0.0)),
            samples=int(data.get("samples", 0)),
            retained=int(data.get("retained", 0)),
            buckets={
                str(cls_name): {
                    str(metric): [list(row) for row in rows] for metric, rows in metrics.items()
                }
                for cls_name, metrics in data.get("buckets", {}).items()
            },
        )


class TelemetryCollector:
    """The rollup-mode measurement plane of one deployment.

    The client layer calls :meth:`record_served` once per served request
    instead of appending to the per-client ``ClientStats`` lists; the
    metrics collector reads :meth:`class_summaries` instead of summarising
    those lists.  All state is bounded by
    ``spec.footprint_budget(duration)``.
    """

    def __init__(self, spec, rng, counters=None) -> None:
        self.spec = spec
        self.rng = rng
        self.counters = counters
        self.samples_recorded = 0
        self._accumulators: Dict[Tuple[str, str], StreamAccumulator] = {}
        self._buckets: Dict[Tuple[str, str], TimeBuckets] = {}
        for client_class in CLIENT_CLASSES:
            for stream in STREAM_NAMES:
                self._accumulators[(client_class, stream)] = StreamAccumulator(
                    spec.reservoir, rng
                )
            for metric in BUCKET_METRICS:
                self._buckets[(client_class, metric)] = TimeBuckets(
                    spec.bucket_s, spec.max_buckets
                )

    def record_served(
        self,
        client_class: str,
        now: float,
        payment_time: Optional[float],
        response_time: Optional[float],
        price: float,
    ) -> None:
        """Fold one served request into the bounded state."""
        self.samples_recorded += 1
        if self.counters is not None:
            self.counters.records_emitted += 1
        self._accumulators[(client_class, "price")].add(price)
        if payment_time is not None:
            self._accumulators[(client_class, "payment")].add(payment_time)
            self._buckets[(client_class, "payment")].add(now, payment_time)
        if response_time is not None:
            self._accumulators[(client_class, "response")].add(response_time)
            self._buckets[(client_class, "response")].add(now, response_time)

    def class_summaries(self, client_class: str) -> Tuple[Summary, Summary, float]:
        """(payment-time summary, response-time summary, mean price)."""
        payment = self._accumulators[(client_class, "payment")].summary()
        response = self._accumulators[(client_class, "response")].summary()
        price = self._accumulators[(client_class, "price")]
        return payment, response, price.mean

    def footprint_records(self) -> int:
        """Retained measurement slots — the quantity the budget tests pin."""
        total = 0
        for accumulator in self._accumulators.values():
            total += accumulator.footprint_records()
        for buckets in self._buckets.values():
            total += buckets.footprint_records()
        return total

    def metrics(self) -> TelemetryMetrics:
        buckets: Dict[str, Dict[str, List[List[float]]]] = {}
        for client_class in CLIENT_CLASSES:
            per_class: Dict[str, List[List[float]]] = {}
            for metric in BUCKET_METRICS:
                rows = self._buckets[(client_class, metric)].rows()
                if rows:
                    per_class[metric] = rows
            if per_class:
                buckets[client_class] = per_class
        return TelemetryMetrics(
            mode=self.spec.mode,
            reservoir=self.spec.reservoir,
            bucket_s=self.spec.bucket_s,
            samples=self.samples_recorded,
            retained=self.footprint_records(),
            buckets=buckets,
        )


class StreamingPriceBook:
    """Bounded drop-in for :class:`~repro.core.pricing.PriceBook`.

    Exact where the evaluation needs exactness (per-class means, revenue,
    free admissions, going rate — all O(classes) state); reservoir-sampled
    where it needs a distribution (percentile, history, samples).  ``len``
    reports recorded bids, matching ``PriceBook``'s "how many auctions"
    reading; ``retained`` is the bounded slot count.
    """

    def __init__(self, capacity: int, rng) -> None:
        self._reservoir = ReservoirSampler(capacity, rng)
        self._sums: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._zero_count = 0
        self._last_price = 0.0
        self._count = 0
        # Reservoir holds PriceSample objects; ReservoirSampler is type-blind.
        self._samples_by_slot: List[PriceSample] = []

    def record(self, time: float, price_bytes: float, client_class: str, request_id: int) -> None:
        if price_bytes < 0:
            raise ValueError(f"price cannot be negative, got {price_bytes}")
        sample = PriceSample(time, price_bytes, client_class, request_id)
        self._count += 1
        self._last_price = price_bytes
        self._sums[client_class] = self._sums.get(client_class, 0.0) + price_bytes
        self._counts[client_class] = self._counts.get(client_class, 0) + 1
        if price_bytes == 0.0:
            self._zero_count += 1
        reservoir = self._reservoir
        if len(self._samples_by_slot) < reservoir.capacity:
            self._samples_by_slot.append(sample)
            reservoir.count += 1
            return
        reservoir.count += 1
        slot = reservoir.rng.randint(0, reservoir.count - 1)
        if slot < reservoir.capacity:
            self._samples_by_slot[slot] = sample

    @classmethod
    def merged(cls, books: "List[StreamingPriceBook]") -> "StreamingPriceBook":
        """Exact-sum merge of per-shard books (reservoirs concatenated)."""
        if not books:
            raise ValueError("merged() needs at least one book")
        merged = cls(sum(book._reservoir.capacity for book in books), books[0]._reservoir.rng)
        latest_time = -math.inf
        for book in books:
            merged._count += book._count
            merged._zero_count += book._zero_count
            for client_class, total in book._sums.items():
                merged._sums[client_class] = merged._sums.get(client_class, 0.0) + total
            for client_class, count in book._counts.items():
                merged._counts[client_class] = merged._counts.get(client_class, 0) + count
            merged._samples_by_slot.extend(book._samples_by_slot)
            if book._samples_by_slot:
                last = max(sample.time for sample in book._samples_by_slot)
                if last >= latest_time and book._count:
                    latest_time = last
                    merged._last_price = book._last_price
        merged._samples_by_slot.sort(key=lambda sample: sample.time)
        merged._reservoir.count = merged._count
        return merged

    # -- PriceBook-compatible queries -------------------------------------------

    @property
    def samples(self) -> List[PriceSample]:
        """The retained reservoir sample, oldest first (a copy)."""
        return sorted(self._samples_by_slot, key=lambda sample: sample.time)

    def __len__(self) -> int:
        return self._count

    @property
    def retained(self) -> int:
        return len(self._samples_by_slot)

    def going_rate(self) -> float:
        return self._last_price if self._count else 0.0

    def average(self, client_class: Optional[str] = None, since: float = 0.0) -> float:
        if since <= 0.0:
            if client_class is None:
                count = sum(self._counts.values())
                return sum(self._sums.values()) / count if count else 0.0
            count = self._counts.get(client_class, 0)
            return self._sums.get(client_class, 0.0) / count if count else 0.0
        values = [
            sample.price_bytes
            for sample in self._samples_by_slot
            if sample.time >= since
            and (client_class is None or sample.client_class == client_class)
        ]
        return sum(values) / len(values) if values else 0.0

    def average_by_class(self, since: float = 0.0) -> Dict[str, float]:
        if since <= 0.0:
            return {
                client_class: self._sums[client_class] / self._counts[client_class]
                for client_class in self._sums
                if self._counts.get(client_class)
            }
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for sample in self._samples_by_slot:
            if sample.time < since:
                continue
            sums[sample.client_class] = sums.get(sample.client_class, 0.0) + sample.price_bytes
            counts[sample.client_class] = counts.get(sample.client_class, 0) + 1
        return {cls_name: sums[cls_name] / counts[cls_name] for cls_name in sums}

    def percentile(self, fraction: float, client_class: Optional[str] = None) -> float:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        values = sorted(
            sample.price_bytes
            for sample in self._samples_by_slot
            if client_class is None or sample.client_class == client_class
        )
        if not values:
            return 0.0
        rank = max(0, min(len(values) - 1, math.ceil(fraction * len(values)) - 1))
        return values[rank]

    def free_admissions(self) -> int:
        return self._zero_count

    def total_revenue_bytes(self, client_class: Optional[str] = None) -> float:
        if client_class is None:
            return sum(self._sums.values())
        return self._sums.get(client_class, 0.0)

    def history(self) -> List[tuple[float, float]]:
        return [(sample.time, sample.price_bytes) for sample in self.samples]
